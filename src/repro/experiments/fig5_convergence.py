"""Fig. 5 reproduction: adversarial convergence of the solver.

The 3-point, 2-D dataset of Eq. 11 with two constraint sets:

* **Case A** — one cluster constraint on rows {1, 3} (1-based): the
  optimum pins their variance to 1/4 along e1 and 0 along e2, and the
  coordinate ascent reaches it essentially after a single pass;
* **Case B** — Case A plus an overlapping cluster constraint on rows
  {2, 3}: the optimum is the singular point with *all* variances zero, and
  the iteration only approaches it as ``(Sigma_1)_11 ∝ 1/tau`` — the slow
  convergence that motivates SIDER's wall-clock cut-off.

The harness records ``(Sigma_1)_11`` after every optimisation step and
fits the decay exponent for Case B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ClassParameters
from repro.core.solver import SolverOptions, solve_maxent
from repro.datasets.paper import (
    adversarial_constraints_case_a,
    adversarial_constraints_case_b,
    adversarial_three_points,
)
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Fig5Result:
    """Convergence traces of the two adversarial cases.

    Attributes
    ----------
    trace_a, trace_b:
        ``(Sigma_1)_11`` after every constraint step, for Case A / Case B.
    final_a, final_b:
        Final values of ``(Sigma_1)_11``.
    case_a_expected:
        The analytic optimum 1/4 of Case A.
    decay_exponent_b:
        Slope of ``log (Sigma_1)_11`` vs ``log tau`` over the tail of
        Case B (expected ≈ -1, i.e. variance ∝ 1/tau).
    sweeps_to_converge_a:
        Sweeps Case A took to hit the solver tolerance.
    steps_to_optimum_a:
        Constraint steps until ``(Sigma_1)_11`` is within 1e-3 of the
        analytic optimum 1/4 — the paper's "convergence after one pass"
        means this is at most one sweep (4 steps).
    """

    trace_a: np.ndarray
    trace_b: np.ndarray
    final_a: float
    final_b: float
    case_a_expected: float
    decay_exponent_b: float
    sweeps_to_converge_a: int
    steps_to_optimum_a: int

    def format_table(self) -> str:
        """Render the convergence comparison."""
        rows = [
            (
                "Case A",
                f"{self.final_a:.4f} (optimum {self.case_a_expected:.4f})",
                f"{self.steps_to_optimum_a} step(s) to optimum",
                "fast: one pass",
            ),
            (
                "Case B",
                f"{self.final_b:.2e} (optimum 0)",
                f"{self.trace_b.size} steps recorded",
                f"slow: (Sigma_1)_11 ~ tau^{self.decay_exponent_b:.2f}",
            ),
        ]
        return format_table(
            ["constraints", "(Sigma_1)_11 final", "effort", "behaviour"],
            rows,
            title="Fig. 5 — adversarial convergence",
        )


def run(max_sweeps_b: int = 400) -> Fig5Result:
    """Run both adversarial cases and collect the variance traces."""
    bundle = adversarial_three_points()
    data = bundle.data

    trace_a, report_a, params_a = _run_case(
        data, adversarial_constraints_case_a(data), max_sweeps=50
    )
    trace_b, report_b, params_b = _run_case(
        data, adversarial_constraints_case_b(data), max_sweeps=max_sweeps_b
    )

    # Row 0 (the paper's first row) carries (Sigma_1)_11.
    final_a = trace_a[-1]
    final_b = trace_b[-1]

    # Fit the tail decay exponent of Case B on the last 50% of steps.
    tail_start = trace_b.size // 2
    taus = np.arange(1, trace_b.size + 1)[tail_start:]
    values = np.maximum(trace_b[tail_start:], 1e-300)
    slope = float(np.polyfit(np.log(taus), np.log(values), 1)[0])

    near_optimum = np.flatnonzero(np.abs(trace_a - 0.25) < 1e-3)
    steps_to_optimum = int(near_optimum[0]) + 1 if near_optimum.size else -1

    return Fig5Result(
        trace_a=trace_a,
        trace_b=trace_b,
        final_a=float(final_a),
        final_b=float(final_b),
        case_a_expected=0.25,
        decay_exponent_b=slope,
        sweeps_to_converge_a=report_a.sweeps,
        steps_to_optimum_a=steps_to_optimum,
    )


def _run_case(data: np.ndarray, constraints, max_sweeps: int):
    """Solve one case, recording (Sigma_row0)_11 after every step."""
    trace: list[float] = []

    def record(sweep: int, t: int, lam: float, params: ClassParameters) -> None:
        # Row 0 belongs to some class; we need its class index.  The
        # equivalence classes assign class 0 to row 0 by construction
        # (first row encountered defines the first class).
        trace.append(float(params.sigma[0, 0, 0]))

    options = SolverOptions(
        lambda_tolerance=1e-4,
        drift_tolerance_factor=1e-4,
        time_cutoff=None,
        max_sweeps=max_sweeps,
    )
    params, classes, report = solve_maxent(
        data, constraints, options=options, on_step=record
    )
    return np.asarray(trace), report, params
