"""Fig. 1 reproduction: the interaction process itself, quantified.

Fig. 1 is the paper's schema of the loop — background distribution,
informative projection, user marking, update, repeat.  There is no data in
the figure, so the reproduction quantifies the loop's two defining
monotone trends on a real run:

* the **view score** (how different data and belief still look) decreases
  as feedback accumulates, and
* the **knowledge** stored in the background distribution
  (KL from the spherical prior, the negated Eq. 5 objective) increases.

The harness replays a full scripted session on each of the three synthetic
datasets and records both series per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.session import ExplorationSession
from repro.datasets.paper import three_d_clusters, x5
from repro.datasets.synthetic import random_centroid_clusters
from repro.experiments.report import format_table
from repro.feedback import ClusterFeedback


@dataclass(frozen=True)
class LoopTrace:
    """One dataset's loop telemetry.

    Attributes
    ----------
    dataset:
        Dataset name.
    top_scores:
        Top |view score| per iteration (len = rounds + 1).
    knowledge:
        KL(p || prior) in nats per iteration (same length).
    """

    dataset: str
    top_scores: tuple
    knowledge: tuple


@dataclass(frozen=True)
class Fig1Result:
    """Loop traces for all datasets.

    Attributes
    ----------
    traces:
        One :class:`LoopTrace` per dataset.
    """

    traces: list

    def format_table(self) -> str:
        """Render score decay and knowledge growth per dataset."""
        rows = []
        for trace in self.traces:
            scores = " -> ".join(f"{s:.3g}" for s in trace.top_scores)
            nats = " -> ".join(f"{k:.0f}" for k in trace.knowledge)
            rows.append((trace.dataset, scores, nats))
        return format_table(
            ["dataset", "top |view score| per iteration", "knowledge (nats)"],
            rows,
            title="Fig. 1 — the interaction loop, quantified",
        )

    def all_scores_decrease(self) -> bool:
        """Every trace's final score is below its initial score."""
        return all(t.top_scores[-1] < t.top_scores[0] for t in self.traces)

    def all_knowledge_increases(self) -> bool:
        """Every trace's knowledge grows monotonically (within jitter)."""
        for t in self.traces:
            diffs = np.diff(np.asarray(t.knowledge))
            if np.any(diffs < -1e-6 * max(t.knowledge)):
                return False
        return True


def run(seed: int = 0) -> Fig1Result:
    """Replay the loop on the three synthetic workloads."""
    traces = [
        _trace_three_d(seed),
        _trace_x5(seed),
        _trace_random(seed),
    ]
    return Fig1Result(traces=traces)


def _trace_three_d(seed: int) -> LoopTrace:
    bundle = three_d_clusters(seed=seed)
    labels = bundle.labels
    markings = [
        np.flatnonzero(labels == 0),
        np.flatnonzero(labels == 1),
        np.flatnonzero((labels == 2) | (labels == 3)),
    ]
    return _replay("three-d-clusters", bundle.data, markings, "pca", seed)


def _trace_x5(seed: int) -> LoopTrace:
    bundle = x5(n=600, seed=seed)
    labels = bundle.labels
    markings = [np.flatnonzero(labels == name) for name in ("A", "B", "C", "D")]
    return _replay("x5", bundle.data, markings, "ica", seed)


def _trace_random(seed: int) -> LoopTrace:
    bundle = random_centroid_clusters(n=400, d=6, k=3, seed=seed)
    labels = bundle.labels
    markings = [np.flatnonzero(labels == c) for c in np.unique(labels)]
    return _replay("random-clusters", bundle.data, markings, "pca", seed)


def _replay(
    name: str, data: np.ndarray, markings: list, objective: str, seed: int
) -> LoopTrace:
    session = ExplorationSession(
        data, objective=objective, standardize=True, seed=seed
    )
    scores = [float(np.max(np.abs(session.current_view().scores)))]
    knowledge = [session.model.knowledge_nats()]
    for rows in markings:
        session.apply(ClusterFeedback(rows=rows))
        scores.append(float(np.max(np.abs(session.current_view().scores))))
        knowledge.append(session.model.knowledge_nats())
    return LoopTrace(
        dataset=name, top_scores=tuple(scores), knowledge=tuple(knowledge)
    )
