"""Experiment harnesses: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning a structured result object with
a ``format_table()`` method that prints the same rows/series the paper
reports.  See DESIGN.md §4 for the full experiment index.
"""

from repro.experiments import (
    fig1_loop,
    fig2_synthetic3d,
    fig3_x5_structure,
    fig5_convergence,
    fig6_whitening,
    fig7_bnc_first_view,
    fig8_bnc_iterations,
    fig9_segmentation,
    table1_ica_scores,
    table2_runtime,
)

__all__ = [
    "fig1_loop",
    "fig2_synthetic3d",
    "fig3_x5_structure",
    "table1_ica_scores",
    "fig5_convergence",
    "fig6_whitening",
    "table2_runtime",
    "fig7_bnc_first_view",
    "fig8_bnc_iterations",
    "fig9_segmentation",
]
