"""Table I + Fig. 4 reproduction: iterative ICA exploration of X̂5.

The experiment runs the full interactive loop on X̂5 with the ICA objective:

* **stage 0** (Fig. 4a): no constraints — the top ICA view shows the
  cluster structure of dims 1–3; the five ICA scores are all substantial;
* **stage 1** (Fig. 4b/c): cluster constraints for the four clusters
  visible in stage 0 — the next view loads on dims 4–5 and the score row
  shrinks (paper: top score drops from 0.041 to 0.037 with the tail
  collapsing toward zero);
* **stage 2** (Fig. 4d): cluster constraints for the three clusters of
  dims 4–5 — all scores collapse (paper row: -0.008 ... -0.002), i.e. the
  background distribution is now a faithful representation of the data.

We check the *shape*: monotone decay of both the top |score| and the score-
row magnitude across stages, plus the view-axis loadings moving from dims
1–3 to dims 4–5 between stage 0 and stage 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.session import ExplorationSession
from repro.datasets.paper import x5
from repro.experiments.report import format_floats, format_table
from repro.feedback import ClusterFeedback
from repro.projection import registry
from repro.projection.view import Projection2D


@dataclass(frozen=True)
class Table1Result:
    """Score rows of the three exploration stages.

    Attributes
    ----------
    score_rows:
        List of three arrays: all ICA scores (sorted by |.| descending) at
        stages 0, 1 and 2 — the rows of Table I.
    views:
        The projection shown at each stage.
    loading_on_dims45:
        For each stage, the combined |loading| of the top view axis on
        dimensions 4–5 (expected: small, large, any).
    """

    score_rows: list
    views: list
    loading_on_dims45: list

    def format_table(self) -> str:
        """Render like Table I of the paper."""
        stage_names = [
            "Fig. 4a,b (no constraints)",
            "Fig. 4c (after 4 cluster constraints)",
            "Fig. 4d (after 3 more cluster constraints)",
        ]
        rows = [
            (name, format_floats(scores, precision=3))
            for name, scores in zip(stage_names, self.score_rows)
        ]
        return format_table(
            ["Projection", "ICA scores (sorted by |value|)"],
            rows,
            title="Table I — ICA scores per iterative step",
        )

    @property
    def top_abs_scores(self) -> list:
        """Largest |score| at each stage (the headline decay)."""
        return [float(np.max(np.abs(row))) for row in self.score_rows]


def run(seed: int = 0, n: int = 1000, restarts: int = 3) -> Table1Result:
    """Run the three-stage X̂5 exploration with the ICA objective.

    ``restarts`` configures the batched multi-restart symmetric FastICA
    search behind every view (this replaced the old single-init serial
    runs): all restarts iterate as one stacked tensor and the strongest
    log-cosh contrast wins, so the Table I score rows no longer depend on
    one initialisation being lucky.
    """
    bundle = x5(n=n, seed=seed)
    labels = bundle.labels
    labels45 = bundle.metadata["labels45"]
    with registry.temporary(registry.ICAObjective(restarts=restarts)):
        return _run_stages(bundle.data, labels, labels45, seed)


def _run_stages(data, labels, labels45, seed: int) -> Table1Result:
    session = ExplorationSession(
        data, objective="ica", standardize=True, seed=seed
    )

    score_rows = []
    views: list[Projection2D] = []
    loadings = []

    # Stage 0: initial view.
    view0 = session.current_view()
    score_rows.append(np.asarray(view0.all_scores))
    views.append(view0)
    loadings.append(_loading_on(view0, dims=(3, 4)))

    # Stage 1: the user marks the four clusters visible in dims 1-3.
    for name in ("A", "B", "C", "D"):
        session.apply(ClusterFeedback(rows=np.flatnonzero(labels == name), label=f"x5-{name}"))
    view1 = session.current_view()
    score_rows.append(np.asarray(view1.all_scores))
    views.append(view1)
    loadings.append(_loading_on(view1, dims=(3, 4)))

    # Stage 2: the user marks the three clusters visible in dims 4-5.
    for name in ("E", "F", "G"):
        session.apply(ClusterFeedback(rows=np.flatnonzero(labels45 == name), label=f"x5-{name}"))
    view2 = session.current_view()
    score_rows.append(np.asarray(view2.all_scores))
    views.append(view2)
    loadings.append(_loading_on(view2, dims=(3, 4)))

    return Table1Result(
        score_rows=score_rows, views=views, loading_on_dims45=loadings
    )


def _loading_on(view: Projection2D, dims: tuple[int, ...]) -> float:
    """Combined |loading| of the top view axis on the given dimensions."""
    axis = view.axes[0]
    return float(np.sum(np.abs(axis[list(dims)])))
