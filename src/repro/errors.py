"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConstraintError(ReproError):
    """A constraint definition is invalid (empty row set, bad vector, ...)."""


class DataShapeError(ReproError):
    """Input data does not have the expected shape or dtype."""


class ConvergenceError(ReproError):
    """The MaxEnt optimisation failed in a way that cannot be recovered.

    Note that hitting the time cut-off is *not* an error — the paper's SIDER
    system deliberately stops after ~10 seconds and uses the partially
    converged model.  This exception is reserved for genuinely broken states
    (NaNs in parameters, non-monotone root equations, ...).
    """


class RootFindError(ReproError):
    """The 1-D root finder could not bracket or locate a root."""


class NotFittedError(ReproError):
    """An operation requiring a fitted model was called before fitting."""
