"""Serialization: save and restore exploration state.

A real analysis session accumulates valuable state — the constraint set
(the user's externalised knowledge) and the saved selections.  This module
persists both to a single JSON file so a session can be resumed, shared,
or replayed against the same dataset.

The data itself is *not* stored (it can be large and usually already lives
somewhere); a content fingerprint is stored instead, and restoring against
different data fails loudly rather than silently misapplying row indices.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.background import BackgroundModel
from repro.core.constraint import Constraint, ConstraintKind
from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.feedback import feedback_from_dict

#: Format marker written into every file; bump on breaking changes.
#: v2 added the typed feedback log (``feedback_log``); v1 files (undo
#: stack only) are still readable.
FORMAT_VERSION = 2

#: Payload versions :func:`session_from_payload` accepts.
SUPPORTED_FORMATS = (1, 2)


def data_fingerprint(data: np.ndarray) -> str:
    """Stable content hash of a data matrix (shape + bytes)."""
    arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()[:32]


def constraint_to_dict(constraint: Constraint) -> dict:
    """JSON-serialisable form of one constraint."""
    return {
        "kind": constraint.kind.value,
        "rows": constraint.rows.tolist(),
        "w": constraint.w.tolist(),
        "label": constraint.label,
    }


def constraint_from_dict(payload: dict) -> Constraint:
    """Rebuild a constraint from its JSON form."""
    try:
        kind = ConstraintKind(payload["kind"])
        rows = np.asarray(payload["rows"], dtype=np.intp)
        w = np.asarray(payload["w"], dtype=np.float64)
        label = str(payload.get("label", ""))
    except (KeyError, TypeError, ValueError) as exc:
        raise DataShapeError(f"malformed constraint payload: {exc}") from exc
    return Constraint(kind, rows, w, label=label)


def session_to_payload(session: ExplorationSession) -> dict:
    """JSON-serialisable knowledge state of a session.

    Stored: data shape and fingerprint, objective, all constraints, the
    typed feedback log (:mod:`repro.feedback` objects, via their
    ``to_dict`` forms), the undo stack (feedback groups), and the
    history's feedback labels.  Not stored: the data, fitted parameters
    (cheap to refit), or RNG state.

    The ``history`` entries are an audit trail for humans reading the
    file; :func:`session_from_payload` does not replay them (views cannot
    be reconstructed without refitting every intermediate belief state),
    so a restored session starts a fresh iteration count.
    """
    return {
        "format": FORMAT_VERSION,
        "fingerprint": data_fingerprint(session.model.data),
        "shape": list(session.model.data.shape),
        "objective": session.objective,
        "constraints": [
            constraint_to_dict(c) for c in session.model.constraints
        ],
        "feedback_log": [fb.to_dict() for fb in session.feedback_log],
        "feedback_groups": [
            [label, count] for label, count in session.feedback_groups
        ],
        "history": [
            {
                "index": record.index,
                "constraints_added": list(record.constraints_added),
                "top_score": float(np.max(np.abs(record.view.scores))),
            }
            for record in session.history
        ],
    }


def session_from_payload(
    data: np.ndarray,
    payload: dict,
    standardize: bool = False,
    seed: int | None = 0,
) -> ExplorationSession:
    """Rebuild a session from :func:`session_to_payload` output.

    The caller must supply the *same* data matrix the session was saved
    from; shape and content are both verified because constraints are
    row-indexed and would silently misapply to different data.
    """
    if not isinstance(payload, dict):
        raise DataShapeError(
            f"expected a session payload dict, got {type(payload).__name__}"
        )
    if payload.get("format") not in SUPPORTED_FORMATS:
        raise DataShapeError(
            f"unsupported session format {payload.get('format')!r} "
            f"(supported: {SUPPORTED_FORMATS})"
        )
    objective = payload.get("objective", "pca")
    try:
        session = ExplorationSession(
            data, objective=objective, standardize=standardize, seed=seed
        )
    except ValueError as exc:
        raise DataShapeError(f"invalid session payload: {exc}") from exc

    shape = payload.get("shape")
    if shape is not None and tuple(shape) != session.model.data.shape:
        raise DataShapeError(
            f"session was saved from data of shape {tuple(shape)}, "
            f"but the supplied data has shape {session.model.data.shape}"
        )
    fingerprint = data_fingerprint(session.model.data)
    if payload.get("fingerprint") != fingerprint:
        raise DataShapeError(
            "session was saved from different data "
            f"(fingerprint {payload.get('fingerprint')!r} != {fingerprint!r})"
        )
    constraints = [constraint_from_dict(c) for c in payload.get("constraints", [])]
    session.model.add_constraints(constraints)
    groups = _restore_feedback_groups(payload, constraints)
    session._feedback_groups = groups  # noqa: SLF001 — intentional restore
    session._feedback_log = _restore_feedback_log(payload)  # noqa: SLF001
    return session


def _restore_feedback_log(payload: dict) -> list:
    """Rebuild the typed feedback log (v2 payloads; empty for v1 files)."""
    raw = payload.get("feedback_log")
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise DataShapeError("feedback_log must be a list of feedback dicts")
    return [feedback_from_dict(item) for item in raw]


def _restore_feedback_groups(
    payload: dict, constraints: list[Constraint]
) -> list[tuple[str, int]]:
    """Rebuild the undo stack saved alongside the constraints.

    Payloads written before feedback groups were persisted lack the key;
    for those, consecutive constraints sharing a label prefix (the part
    before the first ``/``) are grouped as one best-effort undo action.
    """
    raw = payload.get("feedback_groups")
    if raw is not None:
        try:
            groups = [(str(label), int(count)) for label, count in raw]
        except (TypeError, ValueError) as exc:
            raise DataShapeError(
                f"malformed feedback_groups payload: {exc}"
            ) from exc
        # The undo stack may legitimately cover *fewer* constraints than
        # are stored (constraints added via the model API are saveable but
        # not undoable, matching live-session semantics); referencing more
        # than exist is corruption.
        if any(count < 0 for _, count in groups) or sum(
            count for _, count in groups
        ) > len(constraints):
            raise DataShapeError(
                "feedback_groups reference more constraints than are stored"
            )
        return groups
    groups = []
    for c in constraints:
        prefix = c.label.split("/", 1)[0]
        if groups and groups[-1][0] == prefix:
            groups[-1] = (prefix, groups[-1][1] + 1)
        else:
            groups.append((prefix, 1))
    return groups


def save_session(session: ExplorationSession, path: str | Path) -> None:
    """Persist a session's knowledge state to a JSON file.

    See :func:`session_to_payload` for what is (and is not) stored.
    """
    Path(path).write_text(json.dumps(session_to_payload(session), indent=2))


def load_session(
    data: np.ndarray,
    path: str | Path,
    standardize: bool = False,
    seed: int | None = 0,
) -> ExplorationSession:
    """Restore a session against the same dataset.

    Parameters
    ----------
    data:
        The *same* data matrix the session was saved from.  Pass the raw
        (pre-standardisation) matrix and the same ``standardize`` flag used
        originally.
    path:
        File written by :func:`save_session`.
    standardize, seed:
        Session construction parameters (not stored in the file because
        they belong to the caller's environment, not the knowledge state).

    Raises
    ------
    DataShapeError
        If the file is malformed, or the data shape or fingerprint does not
        match — constraints are row-indexed, so applying them to different
        data would be silently wrong.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DataShapeError(f"cannot read session file {path}: {exc}") from exc
    return session_from_payload(
        data, payload, standardize=standardize, seed=seed
    )


def constraint_set_fingerprint(constraints) -> str:
    """Stable hash of a constraint list (kinds, rows, vectors, order)."""
    digest = hashlib.sha256()
    for c in constraints:
        digest.update(c.kind.value.encode())
        digest.update(np.ascontiguousarray(c.rows).tobytes())
        digest.update(np.ascontiguousarray(c.w).tobytes())
    return digest.hexdigest()[:32]


def save_model_parameters(model: BackgroundModel, path: str | Path) -> None:
    """Persist fitted per-class parameters to an .npz file.

    Useful for caching expensive fits of large constraint sets; restore
    with :func:`load_model_parameters`.
    """
    params, classes = model._require_fit()  # noqa: SLF001 — intentional
    np.savez_compressed(
        Path(path),
        fingerprint=np.frombuffer(
            data_fingerprint(model.data).encode(), dtype=np.uint8
        ),
        constraint_fingerprint=np.frombuffer(
            constraint_set_fingerprint(model.constraints).encode(), dtype=np.uint8
        ),
        theta1=params.theta1,
        sigma=params.sigma,
        mean=params.mean,
        class_of_row=classes.class_of_row,
    )


def load_model_parameters(model: BackgroundModel, path: str | Path) -> None:
    """Restore fitted parameters saved by :func:`save_model_parameters`.

    The model must carry the same data and an equivalent constraint set
    (same row partition); the fingerprint and partition are verified.
    """
    from repro.core.equivalence import build_equivalence_classes
    from repro.core.parameters import ClassParameters
    from repro.core.solver import SolverReport

    with np.load(Path(path)) as blob:
        stored_fp = bytes(blob["fingerprint"]).decode()
        if stored_fp != data_fingerprint(model.data):
            raise DataShapeError(
                "parameter file was saved from different data"
            )
        stored_cfp = bytes(blob["constraint_fingerprint"]).decode()
        if stored_cfp != constraint_set_fingerprint(model.constraints):
            raise DataShapeError(
                "parameter file does not match the model's constraint set"
            )
        classes = build_equivalence_classes(
            model.n_rows, list(model.constraints)
        )
        if not np.array_equal(classes.class_of_row, blob["class_of_row"]):
            raise DataShapeError(
                "parameter file does not match the model's row partition"
            )
        params = ClassParameters(
            theta1=blob["theta1"].copy(),
            sigma=blob["sigma"].copy(),
            mean=blob["mean"].copy(),
        )
    model._params = params          # noqa: SLF001 — intentional restore
    model._classes = classes        # noqa: SLF001
    model._report = SolverReport(
        converged=True, sweeps=0, steps=0, elapsed=0.0, max_lambda_change=0.0
    )
    model._dirty = False            # noqa: SLF001
