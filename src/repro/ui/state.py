"""UI state machine: what the SIDER front-end tracks between renders.

The state keeps the current objective (PCA/ICA), the current selection, the
saved groupings and the history of constraint actions — everything the user
can change without triggering a recomputation.  Time-consuming operations
(refitting the background, computing an ICA projection) happen only on
explicit commands, matching SIDER's design of keeping the interface
"responsive and predictable" (Sec. III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataShapeError
from repro.projection import registry
from repro.ui.selection import SelectionStore


class Objective(enum.Enum):
    """The two objectives on the UI's quick toggle (PCA <-> ICA).

    Any other registered objective is reachable through
    :meth:`UIState.set_objective`, which stores it as a custom override.
    """

    PCA = "pca"
    ICA = "ica"


class PendingAction(enum.Enum):
    """Expensive actions that run only on explicit user command."""

    NONE = "none"
    REFIT = "refit"
    RECOMPUTE_VIEW = "recompute-view"


@dataclass
class UIState:
    """Mutable front-end state of the headless SIDER app.

    Attributes
    ----------
    objective:
        Current projection objective.
    selection:
        Currently selected row indices (empty by default).
    store:
        Named saved selections.
    pending:
        Which expensive recomputation the user's edits require next.
    action_log:
        Chronological log of user actions (for reproducibility and tests).
    """

    objective: Objective = Objective.PCA
    #: A registered objective outside the PCA/ICA toggle pair ("kurtosis",
    #: a user plugin, ...); overrides ``objective`` while set.
    custom_objective: str | None = None
    selection: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    store: SelectionStore = field(default_factory=SelectionStore)
    pending: PendingAction = PendingAction.NONE
    action_log: list[str] = field(default_factory=list)

    @property
    def objective_name(self) -> str:
        """The active objective's registry name (toggle pair or custom)."""
        return self.custom_objective or self.objective.value

    def set_objective(self, name: str) -> str:
        """Select any registered objective by name; returns it.

        Names on the toggle pair keep using the enum; anything else is
        stored as a custom override.  Unknown names raise
        :class:`~repro.projection.registry.UnknownObjectiveError`.
        """
        name = registry.get(name).name
        try:
            self.objective = Objective(name)
            self.custom_objective = None
        except ValueError:
            self.custom_objective = name
        self.pending = PendingAction.RECOMPUTE_VIEW
        self.action_log.append(f"objective -> {name}")
        return name

    def set_selection(self, rows: np.ndarray, n_rows: int) -> None:
        """Replace the selection (validated against the dataset size)."""
        arr = np.unique(np.asarray(rows, dtype=np.intp))
        if arr.size and (arr[0] < 0 or arr[-1] >= n_rows):
            raise DataShapeError("selection out of range")
        self.selection = arr
        self.action_log.append(f"select {arr.size} points")

    def clear_selection(self) -> None:
        """Empty the selection."""
        self.selection = np.empty(0, dtype=np.intp)
        self.action_log.append("clear selection")

    def toggle_objective(self) -> Objective:
        """Switch PCA <-> ICA; flags the view for recomputation.

        Toggling leaves any custom objective: the toggle always lands on
        one of the pair.
        """
        self.objective = (
            Objective.ICA if self.objective is Objective.PCA else Objective.PCA
        )
        self.custom_objective = None
        self.pending = PendingAction.RECOMPUTE_VIEW
        self.action_log.append(f"objective -> {self.objective.value}")
        return self.objective

    def mark_dirty(self, action: PendingAction) -> None:
        """Record that an expensive recomputation is needed.

        REFIT supersedes RECOMPUTE_VIEW (a refit always implies a new
        view).
        """
        if action is PendingAction.REFIT or self.pending is PendingAction.NONE:
            self.pending = action

    def consume_pending(self) -> PendingAction:
        """Return and clear the pending action (called by the app loop)."""
        action, self.pending = self.pending, PendingAction.NONE
        return action
