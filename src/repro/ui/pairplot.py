"""Pairplot model: the lower-right panel of the SIDER UI.

The pairplot directly displays the attributes that are maximally different
for the current selection compared to the full dataset.  Headlessly this
means: rank attributes by separation, take the top-k, and expose every
pairwise panel (pairs of projected coordinates) plus per-panel class
overlap diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DataShapeError
from repro.ui.statistics import attribute_separation


@dataclass(frozen=True)
class PairplotModel:
    """A ranked pairplot over the most-discriminating attributes.

    Attributes
    ----------
    attributes:
        Indices of the displayed attributes, ranked by separation
        (descending).
    attribute_names:
        Matching names.
    separation:
        Separation score of every attribute in ``attributes``.
    panels:
        Mapping ``(i, j) -> (n, 2)`` arrays of the points of each off-
        diagonal panel, with ``i``/``j`` *positions* in ``attributes``.
    selection:
        The highlighted rows.
    """

    attributes: np.ndarray
    attribute_names: tuple[str, ...]
    separation: np.ndarray
    panels: dict
    selection: np.ndarray


def build_pairplot(
    data: np.ndarray,
    selection: Sequence[int] | np.ndarray,
    feature_names: Sequence[str] | None = None,
    max_attributes: int = 5,
) -> PairplotModel:
    """Assemble the pairplot of the attributes that best explain a selection.

    Parameters
    ----------
    data:
        Full data matrix (n x d).
    selection:
        Highlighted rows (the red points).
    feature_names:
        Attribute names; defaults to ``X1..Xd``.
    max_attributes:
        Number of top-separating attributes to include.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {arr.shape}")
    sel = np.unique(np.asarray(selection, dtype=np.intp))
    if sel.size == 0:
        raise DataShapeError("selection is empty")
    d = arr.shape[1]
    names = tuple(feature_names) if feature_names else tuple(
        f"X{j + 1}" for j in range(d)
    )
    if len(names) != d:
        raise DataShapeError(f"{len(names)} names for {d} columns")

    separation = attribute_separation(arr, sel)
    k = min(max_attributes, d)
    top = np.argsort(separation)[::-1][:k]

    panels = {}
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            panels[(i, j)] = arr[:, [top[i], top[j]]]

    return PairplotModel(
        attributes=top,
        attribute_names=tuple(names[a] for a in top),
        separation=separation[top],
        panels=panels,
        selection=sel,
    )
