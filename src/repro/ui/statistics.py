"""The SIDER left-hand statistics panel, computed headlessly.

For the full data and the current selection the panel shows per-attribute
summaries; this module reproduces those numbers plus the selection-vs-rest
comparison that drives the pairplot attribute ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DataShapeError
from repro.eval.summaries import ColumnSummary, summarize_columns


@dataclass(frozen=True)
class SelectionStatistics:
    """Panel contents for one selection.

    Attributes
    ----------
    n_selected, n_total:
        Selection size and dataset size.
    full_summary, selection_summary:
        Per-attribute summaries of the full data and of the selection.
    separation:
        Per-attribute standardised separation between the selection and the
        rest (see :func:`attribute_separation`); large values mean the
        attribute distinguishes the selection.
    """

    n_selected: int
    n_total: int
    full_summary: list[ColumnSummary]
    selection_summary: list[ColumnSummary]
    separation: np.ndarray


def attribute_separation(
    data: np.ndarray, rows: Sequence[int] | np.ndarray
) -> np.ndarray:
    """How strongly each attribute separates a selection from the rest.

    A two-sample, pooled-variance standardised mean difference augmented
    with a log variance-ratio term::

        sep_j = |mean_S - mean_R| / pooled_std  +  |log(var_S / var_R)| / 2

    The first term captures location shifts, the second scale differences —
    together they surface the attributes in which the selected points look
    most unusual, which is what the SIDER pairplot displays.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {arr.shape}")
    sel = np.unique(np.asarray(rows, dtype=np.intp))
    if sel.size == 0 or sel.size == arr.shape[0]:
        return np.zeros(arr.shape[1])
    mask = np.zeros(arr.shape[0], dtype=bool)
    mask[sel] = True
    inside = arr[mask]
    outside = arr[~mask]

    mean_in = inside.mean(axis=0)
    mean_out = outside.mean(axis=0)
    var_in = inside.var(axis=0, ddof=1) if inside.shape[0] > 1 else np.zeros(arr.shape[1])
    var_out = (
        outside.var(axis=0, ddof=1) if outside.shape[0] > 1 else np.zeros(arr.shape[1])
    )
    pooled = np.sqrt(0.5 * (var_in + var_out))
    pooled[pooled == 0.0] = np.where(
        np.abs(mean_in - mean_out)[pooled == 0.0] > 0, 1e-12, 1.0
    )
    location = np.abs(mean_in - mean_out) / pooled
    eps = 1e-12
    scale = 0.5 * np.abs(np.log((var_in + eps) / (var_out + eps)))
    return location + scale


def selection_statistics(
    data: np.ndarray,
    rows: Sequence[int] | np.ndarray,
    feature_names: Sequence[str] | None = None,
) -> SelectionStatistics:
    """Assemble the full statistics panel for one selection."""
    arr = np.asarray(data, dtype=np.float64)
    sel = np.unique(np.asarray(rows, dtype=np.intp))
    if sel.size == 0:
        raise DataShapeError("selection is empty")
    if sel[-1] >= arr.shape[0]:
        raise DataShapeError("selection references rows outside the data")
    names = list(feature_names) if feature_names else None
    return SelectionStatistics(
        n_selected=int(sel.size),
        n_total=int(arr.shape[0]),
        full_summary=summarize_columns(arr, names),
        selection_summary=summarize_columns(arr[sel], names),
        separation=attribute_separation(arr, sel),
    )
