"""Headless SIDER UI: all computations of the web front-end, no pixels."""

from repro.ui.app import Frame, SiderApp
from repro.ui.ellipse import ConfidenceEllipse, confidence_ellipse
from repro.ui.render import render_scatterplot, render_score_bar
from repro.ui.pairplot import PairplotModel, build_pairplot
from repro.ui.scatterplot import ScatterplotModel, build_scatterplot
from repro.ui.selection import (
    SelectionStore,
    select_by_label,
    select_ellipse,
    select_knn_blob,
    select_rectangle,
)
from repro.ui.state import Objective, PendingAction, UIState
from repro.ui.statistics import (
    SelectionStatistics,
    attribute_separation,
    selection_statistics,
)

__all__ = [
    "SiderApp",
    "Frame",
    "UIState",
    "Objective",
    "PendingAction",
    "SelectionStore",
    "select_rectangle",
    "select_ellipse",
    "select_by_label",
    "select_knn_blob",
    "ConfidenceEllipse",
    "confidence_ellipse",
    "ScatterplotModel",
    "build_scatterplot",
    "PairplotModel",
    "build_pairplot",
    "SelectionStatistics",
    "selection_statistics",
    "attribute_separation",
    "render_scatterplot",
    "render_score_bar",
]
