"""95 % confidence ellipses for scatterplot overlays.

SIDER draws two blue ellipsoids over the main scatterplot: one for the
current selection's projected points and a dotted one for the corresponding
background-sample points, helping the user judge whether the selection sits
where the background distribution expects it (Sec. III, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2

from repro.errors import DataShapeError


@dataclass(frozen=True)
class ConfidenceEllipse:
    """An ellipse in view coordinates.

    Attributes
    ----------
    centre:
        (2,) ellipse centre.
    axes:
        (2, 2) unit axis directions (rows).
    radii:
        (2,) semi-axis lengths.
    level:
        The confidence level the ellipse covers under a Gaussian fit.
    """

    centre: np.ndarray
    axes: np.ndarray
    radii: np.ndarray
    level: float

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of (n, 2) points inside the ellipse."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[1] != 2:
            raise DataShapeError(f"expected (n, 2) points, got {pts.shape}")
        local = (pts - self.centre) @ self.axes.T
        radii = np.where(self.radii > 0, self.radii, 1e-12)
        return np.sum((local / radii) ** 2, axis=1) <= 1.0

    def boundary(self, n_points: int = 128) -> np.ndarray:
        """(n_points, 2) polyline approximating the ellipse boundary."""
        angles = np.linspace(0.0, 2.0 * np.pi, n_points)
        unit = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        return self.centre + (unit * self.radii) @ self.axes


def confidence_ellipse(
    points: np.ndarray, level: float = 0.95
) -> ConfidenceEllipse:
    """Gaussian confidence ellipse of a 2-D point cloud.

    The ellipse is the ``level`` probability contour of the Gaussian with
    the sample mean and covariance of ``points`` (chi-square quantile with
    2 degrees of freedom scales the covariance eigenvalues).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
        raise DataShapeError(
            f"need at least 2 points of dimension 2, got shape {pts.shape}"
        )
    if not 0.0 < level < 1.0:
        raise DataShapeError(f"confidence level must be in (0,1), got {level}")
    centre = pts.mean(axis=0)
    cov = np.cov(pts, rowvar=False)
    eigvals, eigvecs = np.linalg.eigh(0.5 * (cov + cov.T))
    eigvals = np.maximum(eigvals, 0.0)
    scale = float(chi2.ppf(level, df=2))
    radii = np.sqrt(scale * eigvals)
    order = np.argsort(radii)[::-1]
    return ConfidenceEllipse(
        centre=centre,
        axes=eigvecs.T[order],
        radii=radii[order],
        level=level,
    )
