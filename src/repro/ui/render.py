"""ASCII rendering of scatterplot models: pixels for the headless UI.

SIDER renders its views in a browser; this module renders the same
:class:`~repro.ui.scatterplot.ScatterplotModel` as a character grid so the
library is usable from a plain terminal (and so rendering is testable).

Glyph legend (later glyphs overwrite earlier ones in a cell):

* ``.``  background ghost point,
* ``o``  data point,
* ``*``  selected data point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError
from repro.ui.scatterplot import ScatterplotModel

GHOST_GLYPH = "."
DATA_GLYPH = "o"
SELECTED_GLYPH = "*"


def render_scatterplot(
    model: ScatterplotModel,
    width: int = 72,
    height: int = 24,
    show_ghosts: bool = True,
) -> str:
    """Render a scatterplot model as an ASCII grid with axis labels.

    Parameters
    ----------
    model:
        The scatterplot model (``SiderApp.render().scatterplot``).
    width, height:
        Character-grid size (excluding the frame).
    show_ghosts:
        Include the background sample as ``.`` glyphs.

    Returns
    -------
    str
        Multi-line drawing: framed grid, then the x/y axis labels.
    """
    if width < 8 or height < 4:
        raise DataShapeError("grid must be at least 8x4 characters")

    points = model.points
    ghosts = model.ghost_points
    everything = np.vstack([points, ghosts]) if show_ghosts else points
    x_lo, y_lo = everything.min(axis=0)
    x_hi, y_hi = everything.max(axis=0)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def plot(coords: np.ndarray, glyph: str) -> None:
        cols = ((coords[:, 0] - x_lo) / x_span * (width - 1)).astype(int)
        rows = ((coords[:, 1] - y_lo) / y_span * (height - 1)).astype(int)
        for r, c in zip(rows, cols):
            grid[height - 1 - r][c] = glyph   # y grows upward

    if show_ghosts:
        plot(ghosts, GHOST_GLYPH)
    plot(points, DATA_GLYPH)
    if model.selection.size:
        plot(points[model.selection], SELECTED_GLYPH)

    top = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = f"  [{DATA_GLYPH}] data"
    if show_ghosts:
        legend += f"  [{GHOST_GLYPH}] background sample"
    if model.selection.size:
        legend += f"  [{SELECTED_GLYPH}] selection ({model.selection.size})"
    return "\n".join(
        [top, body, top, f"x: {model.x_label}", f"y: {model.y_label}", legend]
    )


def render_score_bar(scores: np.ndarray, width: int = 40) -> str:
    """Render view scores as a small horizontal bar chart.

    Bars are scaled to the largest |score|; negative scores are marked
    with ``-`` bars so the sub/super-gaussian signature stays visible.
    """
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise DataShapeError("scores must be a non-empty 1-D array")
    top = float(np.max(np.abs(arr)))
    lines = []
    for k, score in enumerate(arr):
        frac = 0.0 if top == 0.0 else abs(score) / top
        bar = ("#" if score >= 0 else "-") * max(1, int(round(frac * width)))
        lines.append(f"score[{k}] {score:+.4f} {bar}")
    return "\n".join(lines)
