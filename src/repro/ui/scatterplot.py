"""Main scatterplot model: the data SIDER draws in its central view.

The upper-right scatterplot of the SIDER UI shows, for the current 2-D
projection: the data points (black), the selected points (red), one
background-distribution sample per data point (gray circles), a gray
segment connecting each data point to its ghost (the displacement the
belief state implies), and confidence ellipses for the selection and its
ghosts.  This module computes all of that as plain arrays so that a test
suite — or any plotting front-end — can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataShapeError
from repro.projection.view import Projection2D
from repro.ui.ellipse import ConfidenceEllipse, confidence_ellipse


@dataclass(frozen=True)
class ScatterplotModel:
    """Everything needed to render one SIDER scatterplot.

    Attributes
    ----------
    points:
        (n, 2) projected data coordinates.
    ghost_points:
        (n, 2) projected background-sample coordinates.
    segments:
        (n, 2, 2) displacement segments: ``segments[i] = [point, ghost]``.
    selection:
        Row indices currently selected (may be empty).
    selection_ellipse, ghost_ellipse:
        95 % confidence ellipses of the selected points and of their ghost
        points (None when fewer than 3 points are selected).
    x_label, y_label:
        Axis labels in the paper's figure format.
    """

    points: np.ndarray
    ghost_points: np.ndarray
    segments: np.ndarray
    selection: np.ndarray
    selection_ellipse: ConfidenceEllipse | None
    ghost_ellipse: ConfidenceEllipse | None
    x_label: str
    y_label: str

    @property
    def mean_displacement(self) -> float:
        """Average data-to-ghost distance in view coordinates.

        A scalar proxy for "how different are data and belief in this
        view" that decreases as constraints are added.
        """
        return float(
            np.mean(np.linalg.norm(self.points - self.ghost_points, axis=1))
        )


def build_scatterplot(
    view: Projection2D,
    data: np.ndarray,
    background_sample: np.ndarray,
    selection: np.ndarray | None = None,
    feature_names: list[str] | None = None,
    ellipse_level: float = 0.95,
) -> ScatterplotModel:
    """Assemble the scatterplot model for a view.

    Parameters
    ----------
    view:
        The current 2-D projection.
    data:
        Observed data (n x d).
    background_sample:
        One background draw per row (n x d), e.g. ``model.sample()``.
    selection:
        Optional row indices to highlight.
    feature_names:
        Attribute names for the axis labels.
    ellipse_level:
        Confidence level of the selection/ghost ellipses.
    """
    data = np.asarray(data, dtype=np.float64)
    sample = np.asarray(background_sample, dtype=np.float64)
    if data.shape != sample.shape:
        raise DataShapeError(
            f"data shape {data.shape} != background sample shape {sample.shape}"
        )
    points = view.project(data)
    ghosts = view.project(sample)
    segments = np.stack([points, ghosts], axis=1)

    sel = (
        np.unique(np.asarray(selection, dtype=np.intp))
        if selection is not None
        else np.empty(0, dtype=np.intp)
    )
    if sel.size and sel[-1] >= data.shape[0]:
        raise DataShapeError("selection references rows outside the data")

    sel_ellipse = None
    ghost_ellipse = None
    if sel.size >= 3:
        sel_ellipse = confidence_ellipse(points[sel], level=ellipse_level)
        ghost_ellipse = confidence_ellipse(ghosts[sel], level=ellipse_level)

    return ScatterplotModel(
        points=points,
        ghost_points=ghosts,
        segments=segments,
        selection=sel,
        selection_ellipse=sel_ellipse,
        ghost_ellipse=ghost_ellipse,
        x_label=view.axis_label(0, feature_names=feature_names),
        y_label=view.axis_label(1, feature_names=feature_names),
    )
