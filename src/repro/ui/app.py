"""`SiderApp`: the headless SIDER application.

Combines the exploration session (model side) with the UI state machine
(front-end side) and produces render models (scatterplot, pairplot,
statistics panel) exactly as the R/Shiny SIDER does — minus the pixels.

Typical scripted use::

    app = SiderApp(bundle.data, feature_names=bundle.feature_names)
    frame = app.render()                       # initial most-informative view
    app.select_rectangle((0.5, 3.0), (-1.0, 2.0))
    app.add_cluster_constraint()               # button: 'add cluster constraint'
    app.update_background()                    # button: 'recompute background'
    frame = app.render()                       # next most-informative view
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.session import ExplorationSession
from repro.core.solver import SolverOptions
from repro.errors import DataShapeError
from repro.feedback import (
    ClusterFeedback,
    CovarianceFeedback,
    MarginFeedback,
    ViewSelectionFeedback,
)
from repro.projection.view import Projection2D
from repro.ui.pairplot import PairplotModel, build_pairplot
from repro.ui.scatterplot import ScatterplotModel, build_scatterplot
from repro.ui.selection import select_ellipse, select_rectangle
from repro.ui.state import Objective, PendingAction, UIState
from repro.ui.statistics import SelectionStatistics, selection_statistics


@dataclass(frozen=True)
class Frame:
    """One rendered 'screen' of the app.

    Attributes
    ----------
    view:
        The 2-D projection behind the scatterplot.
    scatterplot:
        Main scatterplot model (points, ghosts, segments, ellipses).
    pairplot:
        Pairplot of the most-discriminating attributes for the selection
        (None when nothing is selected).
    statistics:
        Statistics panel for the selection (None when nothing is selected).
    """

    view: Projection2D
    scatterplot: ScatterplotModel
    pairplot: PairplotModel | None
    statistics: SelectionStatistics | None


class SiderApp:
    """Headless SIDER: render models + user commands, no pixels.

    Parameters
    ----------
    data:
        Data matrix (n x d).
    feature_names:
        Optional attribute names used in axis labels and panels.
    objective:
        Initial view objective — any name registered with
        :mod:`repro.projection.registry`.
    standardize:
        Standardise columns before exploration.
    solver_options:
        Background-solver options (the UI exposes these as the convergence
        parameter controls; the ~10 s default cut-off matches SIDER).
    seed:
        Seed for all randomness (ICA init, ghost sampling).
    """

    def __init__(
        self,
        data: np.ndarray,
        feature_names: list[str] | tuple[str, ...] | None = None,
        objective: str = "pca",
        standardize: bool = False,
        solver_options: SolverOptions | None = None,
        seed: int | None = 0,
    ) -> None:
        self.session = ExplorationSession(
            data,
            objective=objective,
            standardize=standardize,
            solver_options=solver_options,
            seed=seed,
        )
        # The session constructor validated the name against the registry;
        # names outside the PCA/ICA toggle pair land on the custom slot.
        self.state = UIState()
        try:
            self.state.objective = Objective(self.session.objective)
        except ValueError:
            self.state.custom_objective = self.session.objective
        self.feature_names = list(feature_names) if feature_names else None
        self._ghosts: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> Frame:
        """Produce the current screen (fits the model if needed)."""
        view = self.session.current_view(objective=self.state.objective_name)
        if self._ghosts is None:
            self._ghosts = self.session.background_sample()
        selection = self.state.selection
        scatter = build_scatterplot(
            view,
            self.session.data,
            self._ghosts,
            selection=selection if selection.size else None,
            feature_names=self.feature_names,
        )
        pairplot = None
        stats = None
        if selection.size:
            pairplot = build_pairplot(
                self.session.data, selection, feature_names=self.feature_names
            )
            stats = selection_statistics(
                self.session.data, selection, feature_names=self.feature_names
            )
        return Frame(view=view, scatterplot=scatter, pairplot=pairplot, statistics=stats)

    # ------------------------------------------------------------------
    # Selection commands
    # ------------------------------------------------------------------

    def select_rectangle(
        self, x_range: tuple[float, float], y_range: tuple[float, float]
    ) -> np.ndarray:
        """Rectangle-select in the current view; returns the selected rows."""
        view = self.session.current_view(objective=self.state.objective_name)
        projected = view.project(self.session.data)
        rows = select_rectangle(projected, x_range, y_range)
        self.state.set_selection(rows, self.session.data.shape[0])
        return rows

    def select_ellipse(
        self, centre: tuple[float, float], radii: tuple[float, float]
    ) -> np.ndarray:
        """Ellipse-select in the current view; returns the selected rows."""
        view = self.session.current_view(objective=self.state.objective_name)
        projected = view.project(self.session.data)
        rows = select_ellipse(projected, centre, radii)
        self.state.set_selection(rows, self.session.data.shape[0])
        return rows

    def select_rows(self, rows) -> np.ndarray:
        """Directly select explicit row indices (e.g. a dataset class)."""
        arr = np.asarray(rows, dtype=np.intp)
        self.state.set_selection(arr, self.session.data.shape[0])
        return self.state.selection

    def save_selection(self, name: str) -> None:
        """Save the current selection as a named grouping."""
        self.state.store.save(name, self.state.selection)
        self.state.action_log.append(f"save selection {name!r}")

    def load_selection(self, name: str) -> np.ndarray:
        """Restore a named grouping as the current selection."""
        rows = self.state.store.load(name)
        self.state.set_selection(rows, self.session.data.shape[0])
        return rows

    # ------------------------------------------------------------------
    # Constraint commands (the left-panel buttons)
    # ------------------------------------------------------------------

    def add_cluster_constraint(self, label: str = "") -> None:
        """Button: add a cluster constraint for the current selection."""
        if not self.state.selection.size:
            raise DataShapeError("no selection to constrain")
        self.session.apply(
            ClusterFeedback(
                rows=self.state.selection, label=label
            )
        )
        self.state.mark_dirty(PendingAction.REFIT)
        self.state.action_log.append("add cluster constraint")

    def add_2d_constraint(self, label: str = "") -> None:
        """Button: add a 2-D constraint for the current selection."""
        if not self.state.selection.size:
            raise DataShapeError("no selection to constrain")
        self.session.apply(
            ViewSelectionFeedback(
                rows=self.state.selection, label=label
            )
        )
        self.state.mark_dirty(PendingAction.REFIT)
        self.state.action_log.append("add 2-D constraint")

    def add_margin_constraints(self) -> None:
        """Declare column means/variances known."""
        self.session.apply(MarginFeedback())
        self.state.mark_dirty(PendingAction.REFIT)
        self.state.action_log.append("add margin constraints")

    def add_one_cluster_constraint(self) -> None:
        """Declare the overall covariance known."""
        self.session.apply(CovarianceFeedback())
        self.state.mark_dirty(PendingAction.REFIT)
        self.state.action_log.append("add 1-cluster constraint")

    def undo(self) -> str | None:
        """Button: retract the most recent feedback action.

        Returns the undone action's label (or None).  The view refreshes
        on the next :meth:`update_background` / :meth:`render`.
        """
        label = self.session.undo_last_feedback()
        if label is not None:
            self.state.mark_dirty(PendingAction.REFIT)
            self.state.action_log.append(f"undo {label!r}")
            self._ghosts = None
        return label

    def update_background(self) -> None:
        """Button: recompute the background distribution and projection.

        Expensive work happens only here (and inside :meth:`render` when a
        first fit is needed), never as a side effect of selecting points —
        mirroring SIDER's explicit-command design.
        """
        self.state.consume_pending()
        # Invalidate ghosts; the refit happens lazily in current_view().
        self._ghosts = None
        self.session.current_view(objective=self.state.objective_name)
        self._ghosts = self.session.background_sample()
        self.state.action_log.append("update background")

    def toggle_objective(self) -> str:
        """Switch between the PCA and ICA objectives."""
        objective = self.state.toggle_objective()
        self.session.objective = objective.value
        return objective.value

    def set_objective(self, name: str) -> str:
        """Select any registered objective by name (beyond the toggle pair)."""
        chosen = self.state.set_objective(name)
        self.session.objective = chosen
        return chosen
