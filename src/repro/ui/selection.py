"""Selection model: how a user picks points in a SIDER scatterplot.

SIDER offers three ways to build a selection: direct marking (lasso /
rectangle in the view), pre-defined classes of the dataset, and previously
saved groupings.  The headless equivalents are:

* :func:`select_rectangle` / :func:`select_ellipse` — geometric selection
  in the *projected* 2-D coordinates of the current view;
* :func:`select_by_label` — use a dataset class as the selection;
* :class:`SelectionStore` — named, saved groupings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DataShapeError


def select_rectangle(
    projected: np.ndarray,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
) -> np.ndarray:
    """Rows whose projected coordinates fall inside an axis-aligned box.

    Parameters
    ----------
    projected:
        (n, 2) projected coordinates (``view.project(data)``).
    x_range, y_range:
        Inclusive (low, high) bounds; swapped bounds are normalised.
    """
    pts = _check_projected(projected)
    x_lo, x_hi = sorted(x_range)
    y_lo, y_hi = sorted(y_range)
    mask = (
        (pts[:, 0] >= x_lo)
        & (pts[:, 0] <= x_hi)
        & (pts[:, 1] >= y_lo)
        & (pts[:, 1] <= y_hi)
    )
    return np.flatnonzero(mask)


def select_ellipse(
    projected: np.ndarray,
    centre: tuple[float, float],
    radii: tuple[float, float],
) -> np.ndarray:
    """Rows inside an axis-aligned ellipse in view coordinates."""
    pts = _check_projected(projected)
    cx, cy = centre
    rx, ry = radii
    if rx <= 0 or ry <= 0:
        raise DataShapeError("ellipse radii must be positive")
    mask = ((pts[:, 0] - cx) / rx) ** 2 + ((pts[:, 1] - cy) / ry) ** 2 <= 1.0
    return np.flatnonzero(mask)


def select_by_label(labels: np.ndarray, value) -> np.ndarray:
    """All rows of a ground-truth class (SIDER's 'pre-defined classes')."""
    return np.flatnonzero(np.asarray(labels) == value)


def select_knn_blob(projected: np.ndarray, seed_point: int, k: int) -> np.ndarray:
    """The k rows nearest (in view coordinates) to a seed row, inclusive.

    A cheap stand-in for a lasso around an on-screen blob.
    """
    pts = _check_projected(projected)
    if not 0 <= seed_point < pts.shape[0]:
        raise DataShapeError(f"seed point {seed_point} out of range")
    if k < 1:
        raise DataShapeError("k must be >= 1")
    dist = np.linalg.norm(pts - pts[seed_point], axis=1)
    return np.sort(np.argsort(dist)[: min(k, pts.shape[0])])


class SelectionStore:
    """Named, saved selections (SIDER's 'previously saved groupings')."""

    def __init__(self) -> None:
        self._groups: dict[str, np.ndarray] = {}

    def save(self, name: str, rows: Sequence[int] | np.ndarray) -> None:
        """Save (or overwrite) a named selection."""
        arr = np.unique(np.asarray(rows, dtype=np.intp))
        if arr.size == 0:
            raise DataShapeError("refusing to save an empty selection")
        self._groups[name] = arr

    def load(self, name: str) -> np.ndarray:
        """Retrieve a saved selection by name."""
        if name not in self._groups:
            raise KeyError(f"no saved selection named {name!r}")
        return self._groups[name].copy()

    def names(self) -> list[str]:
        """All saved selection names, insertion-ordered."""
        return list(self._groups)

    def remove(self, name: str) -> None:
        """Delete a saved selection."""
        if name not in self._groups:
            raise KeyError(f"no saved selection named {name!r}")
        del self._groups[name]

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, name: str) -> bool:
        return name in self._groups


def _check_projected(projected: np.ndarray) -> np.ndarray:
    pts = np.asarray(projected, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise DataShapeError(f"expected (n, 2) projected points, got {pts.shape}")
    return pts
