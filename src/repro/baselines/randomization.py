"""Permutation-based constrained randomization baseline.

The predecessor system (Puolamäki et al., ECML-PKDD 2016 — reference [14]
of the paper) modelled the background distribution *implicitly* by
constrained permutations of the data instead of an explicit MaxEnt
distribution.  The paper argues the analytic MaxEnt form is faster and
scales better.  This module implements a faithful, simplified version of
the permutation approach so the claim can be measured:

* the belief state is a set of row groups ("clusters the user has seen");
* a randomized surrogate dataset is produced by permuting values *within
  each group* independently per column — preserving each group's per-column
  marginals (≈ the cluster's location/spread) while destroying everything
  else;
* the "background sample" is one such randomization, and whitening has no
  analytic form — statistics must be estimated from repeated permutations,
  which is exactly the cost the MaxEnt formulation removes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DataShapeError


class ConstrainedRandomization:
    """Permutation-based background model over row groups.

    Parameters
    ----------
    data:
        Observed data matrix (n x d).
    """

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2:
            raise DataShapeError(f"expected 2-D data, got shape {arr.shape}")
        self._data = arr.copy()
        self._groups: list[np.ndarray] = []

    @property
    def n_groups(self) -> int:
        """Number of registered groups (excluding the implicit rest-group)."""
        return len(self._groups)

    def add_group(self, rows: Sequence[int] | np.ndarray) -> None:
        """Register a row group whose per-column marginals are preserved."""
        arr = np.unique(np.asarray(rows, dtype=np.intp))
        if arr.size == 0:
            raise DataShapeError("group is empty")
        if arr[-1] >= self._data.shape[0]:
            raise DataShapeError("group references rows outside the data")
        self._groups.append(arr)

    def _partition(self) -> list[np.ndarray]:
        """Disjoint cells: group intersections + the untouched remainder.

        Overlapping groups are resolved by cell refinement (each row's cell
        is the set of groups containing it), the permutation analogue of
        the MaxEnt equivalence classes.
        """
        n = self._data.shape[0]
        signature = [tuple()] * n
        for g, rows in enumerate(self._groups):
            for i in rows:
                signature[i] = signature[i] + (g,)
        cells: dict[tuple, list[int]] = {}
        for i, sig in enumerate(signature):
            cells.setdefault(sig, []).append(i)
        return [np.asarray(rows, dtype=np.intp) for rows in cells.values()]

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """One randomized surrogate dataset.

        Within every cell, each column is independently permuted.  Rows in
        no group are permuted across the whole remainder, matching the
        fully-uninformed prior.
        """
        rng = rng or np.random.default_rng()
        out = self._data.copy()
        for rows in self._partition():
            if rows.size < 2:
                continue
            for j in range(out.shape[1]):
                out[rows, j] = out[rows[rng.permutation(rows.size)], j]
        return out

    def estimate_row_means(
        self, n_samples: int = 25, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Monte-Carlo estimate of per-row background means.

        The MaxEnt model gets these *analytically*; the permutation model
        must average over ``n_samples`` randomizations — the very cost
        difference the paper's related-work section highlights.
        """
        rng = rng or np.random.default_rng(0)
        total = np.zeros_like(self._data)
        for _ in range(n_samples):
            total += self.sample(rng=rng)
        return total / n_samples
