"""Baselines: static projection pursuit, random views, randomization."""

from repro.baselines.random_projection import best_of_random_views, random_view
from repro.baselines.randomization import ConstrainedRandomization
from repro.baselines.static_projection import (
    repeated_static_views,
    static_ica_view,
    static_pca_view,
)

__all__ = [
    "static_pca_view",
    "static_ica_view",
    "repeated_static_views",
    "random_view",
    "best_of_random_views",
    "ConstrainedRandomization",
]
