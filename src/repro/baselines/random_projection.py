"""Random 2-D projections: the weakest sensible view-selection baseline."""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError
from repro.projection.scores import pca_scores
from repro.projection.view import Projection2D


def random_view(
    dim: int, rng: np.random.Generator | None = None, data: np.ndarray | None = None
) -> Projection2D:
    """A uniformly random orthonormal 2-D projection of R^dim.

    Parameters
    ----------
    dim:
        Ambient dimensionality.
    rng:
        Randomness source.
    data:
        Optional data to score the random axes on (PCA + ICA scores); when
        omitted scores are reported as zero.
    """
    if dim < 2:
        raise DataShapeError("random 2-D projection needs dim >= 2")
    rng = rng or np.random.default_rng()
    gaussian = rng.standard_normal((dim, 2))
    # QR gives an orthonormal basis of the column span.
    q, _ = np.linalg.qr(gaussian)
    axes = q.T[:2]
    if data is not None:
        scores = pca_scores(data, axes)
    else:
        scores = np.zeros(2)
    return Projection2D(
        axes=axes.copy(), scores=scores, objective="pca", all_scores=scores.copy()
    )


def best_of_random_views(
    data: np.ndarray,
    n_candidates: int = 50,
    objective: str = "pca",
    rng: np.random.Generator | None = None,
) -> Projection2D:
    """Pick the best of many random views — a cheap projection-pursuit proxy.

    Useful as a middle baseline between a single random view and the exact
    optimisation; ``objective`` is any registered objective name, whose
    ``score`` ranks the candidates.
    """
    from repro.projection import registry

    obj = registry.get(objective)
    arr = np.asarray(data, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    best: Projection2D | None = None
    best_score = -np.inf
    for _ in range(n_candidates):
        candidate = random_view(arr.shape[1], rng=rng)
        scores = np.atleast_1d(
            np.asarray(obj.score(arr, candidate.axes), dtype=np.float64)
        )
        top = float(np.max(np.abs(scores)))
        if top > best_score:
            best_score = top
            best = Projection2D(
                axes=candidate.axes,
                scores=scores,
                objective=obj.name,
                all_scores=scores.copy(),
            )
    assert best is not None  # n_candidates >= 1 guarantees assignment
    return best
