"""Static (non-interactive) projection pursuit baselines.

These are the methods the paper positions itself against: PCA/ICA with a
fixed objective, computed once on the raw data, with no way to incorporate
what the user has already learned.  Running them alongside the interactive
loop quantifies the paper's claim that static views keep showing the most
prominent (already-known) structure.
"""

from __future__ import annotations

import numpy as np

from repro.projection.fastica import fit_fastica
from repro.projection.pca import fit_pca
from repro.projection.scores import ica_scores, pca_scores
from repro.projection.view import Projection2D


def static_pca_view(data: np.ndarray) -> Projection2D:
    """Plain PCA view of the raw data (top-2 variance directions).

    Note the ranking difference from the interactive pipeline: static PCA
    ranks by raw variance, not by deviation-from-unit variance, because
    without a background model there is no notion of "expected" variance.
    """
    result = fit_pca(np.asarray(data, dtype=np.float64))
    directions = result.components
    scores = pca_scores(data, directions)
    return Projection2D(
        axes=directions[:2].copy(),
        scores=scores[:2].copy(),
        objective="pca",
        all_scores=scores.copy(),
    )


def static_ica_view(
    data: np.ndarray, rng: np.random.Generator | None = None
) -> Projection2D:
    """Plain FastICA view of the raw data (top-2 |non-gaussianity|)."""
    result = fit_fastica(np.asarray(data, dtype=np.float64), rng=rng)
    scores = ica_scores(data, result.components)
    order = np.argsort(np.abs(scores))[::-1]
    directions = result.components[order]
    scores = scores[order]
    if directions.shape[0] < 2:
        directions = np.vstack([directions, directions])
        scores = np.concatenate([scores, scores])
    return Projection2D(
        axes=directions[:2].copy(),
        scores=scores[:2].copy(),
        objective="ica",
        all_scores=scores.copy(),
    )


def repeated_static_views(data: np.ndarray, n_views: int = 3) -> list[Projection2D]:
    """What a static tool shows across 'iterations': the same view.

    Static methods have no interaction channel, so asking again yields the
    same projection; returned as a list to make baseline-vs-interactive
    comparisons structurally parallel.
    """
    view = static_pca_view(data)
    return [view for _ in range(n_views)]
