"""Projection-pursuit substrate: PCA, FastICA and view scoring."""

from repro.projection.fastica import ICAResult, fit_fastica
from repro.projection.pca import PCAResult, fit_pca, unit_deviation_score
from repro.projection.scores import (
    GAUSSIAN_LOGCOSH_MEAN,
    ica_scores,
    pca_scores,
    view_score_summary,
)
from repro.projection.view import Projection2D, most_informative_view

__all__ = [
    "PCAResult",
    "fit_pca",
    "unit_deviation_score",
    "ICAResult",
    "fit_fastica",
    "GAUSSIAN_LOGCOSH_MEAN",
    "pca_scores",
    "ica_scores",
    "view_score_summary",
    "Projection2D",
    "most_informative_view",
]
