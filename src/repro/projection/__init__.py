"""Projection-pursuit substrate: objectives, PCA, FastICA, view scoring.

View objectives are pluggable: see :mod:`repro.projection.registry` for
the :class:`Objective` protocol, the built-in ``pca`` / ``ica`` /
``kurtosis`` / ``axis`` objectives, and ``registry.register(...)`` for
adding your own.
"""

from repro.projection import registry
from repro.projection.fastica import ICAResult, fit_fastica
from repro.projection.pca import PCAResult, fit_pca, unit_deviation_score
from repro.projection.registry import Objective, UnknownObjectiveError
from repro.projection.scores import (
    GAUSSIAN_LOGCOSH_MEAN,
    ica_scores,
    pca_scores,
    view_score_summary,
)
from repro.projection.view import Projection2D, most_informative_view

__all__ = [
    "registry",
    "Objective",
    "UnknownObjectiveError",
    "PCAResult",
    "fit_pca",
    "unit_deviation_score",
    "ICAResult",
    "fit_fastica",
    "GAUSSIAN_LOGCOSH_MEAN",
    "pca_scores",
    "ica_scores",
    "view_score_summary",
    "Projection2D",
    "most_informative_view",
]
