"""Objective registry: pluggable projection-pursuit vocabularies.

The paper's interaction loop is agnostic about *how* candidate views are
ranked — any projection-pursuit objective that produces directions and
scores them can drive the "most informative view" step.  This module makes
that openness first-class: an :class:`Objective` finds candidate direction
vectors on the whitened data and scores them, and a process-global registry
maps objective names to implementations so new objectives become drop-in
plugins visible everywhere an objective name is accepted (sessions, the
CLI, the service API, clients).

Built-in objectives:

``pca``      principal components of the whitened data ranked by the
             unit-deviation KL score (footnote 1 of the paper);
``ica``      FastICA directions ranked by signed log-cosh non-gaussianity
             (both the symmetric and deflation variants are run and the
             stronger basis wins);
``kurtosis`` deflationary kurtosis pursuit — fixed-point iteration on the
             kurtosis contrast, ranking by |excess kurtosis|;
``axis``     the axis-aligned "original attributes" baseline of the
             paper's Table I comparisons: canonical basis vectors ranked
             by the same log-cosh score ICA uses.

Registering a custom objective::

    from repro.projection import registry

    class RandomPursuit:
        name = "random"
        description = "best of 64 random directions"
        def find_directions(self, whitened, rng):
            ...
        def score(self, whitened, directions):
            ...

    registry.register(RandomPursuit())

After this, ``ExplorationSession(data, objective="random")``, the
``repro explore --objective random`` CLI, and ``POST /v1/sessions`` with
``{"objective": "random"}`` all work without touching core files.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro import perf
from repro.errors import ReproError
from repro.projection.fastica import fit_fastica
from repro.projection.pca import fit_pca
from repro.projection.scores import ica_scores, pca_scores


class UnknownObjectiveError(ReproError, ValueError):
    """The requested objective name is not in the registry.

    Subclasses :class:`ValueError` so callers that guarded objective names
    with ``except ValueError`` keep working unchanged.
    """


@runtime_checkable
class Objective(Protocol):
    """What a view objective must provide.

    Attributes
    ----------
    name:
        Registry key; also stamped on every :class:`Projection2D` the
        objective produces.
    description:
        One-line human-readable summary (shown by ``GET /v1/objectives``
        and ``repro objectives``).
    """

    name: str
    description: str

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Candidate unit direction vectors, one per row ``(k, d)``.

        An objective whose search already scores its candidates may return
        ``(directions, scores)`` instead; the view builder then skips the
        separate :meth:`score` pass.
        """
        ...

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Score each direction; views rank by ``|score|`` descending."""
        ...


# ----------------------------------------------------------------------
# Built-in objectives
# ----------------------------------------------------------------------


class PCAObjective:
    """Principal components ranked by deviation of variance from 1."""

    name = "pca"
    description = (
        "principal components of the whitened data, ranked by the "
        "unit-deviation KL score (variance differences carry the signal)"
    )

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return fit_pca(whitened, rank_by_unit_deviation=True).components

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        return pca_scores(whitened, directions)


class ICAObjective:
    """FastICA directions ranked by signed log-cosh non-gaussianity.

    Both FastICA variants are run and the basis with the stronger top-2
    |scores| wins — on cluster mixtures the deflation variant often finds
    strong discriminating directions the symmetric compromise misses.
    The symmetric variant searches ``restarts`` random initialisations as
    one stacked tensor iteration (batched multi-restart; this replaced
    the serial one-init-per-variant runs), so seed-unlucky symmetric
    fixed points no longer decide the view.
    """

    name = "ica"
    description = (
        "FastICA directions ranked by |log-cosh non-gaussianity| "
        "(finds clustered/multimodal structure at matched variances)"
    )

    def __init__(self, restarts: int = 3) -> None:
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.restarts = int(restarts)

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        best: tuple[np.ndarray, np.ndarray] | None = None
        best_strength = -np.inf
        for algorithm in ("symmetric", "deflation"):
            # Child generator per variant keeps the two runs independent
            # while remaining reproducible from the caller's generator.
            child = np.random.default_rng(rng.integers(0, 2**63))
            result = fit_fastica(
                whitened,
                rng=child,
                algorithm=algorithm,
                n_restarts=self.restarts if algorithm == "symmetric" else 1,
            )
            scores = ica_scores(whitened, result.components)
            strength = float(np.sum(np.sort(np.abs(scores))[::-1][:2]))
            if strength > best_strength:
                best_strength = strength
                best = (result.components, scores)
        assert best is not None
        # Scores come along: the search computed them to pick the winner,
        # so the view builder need not re-run the log-cosh pass.
        return best

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        return ica_scores(whitened, directions)


class KurtosisObjective:
    """Deflationary kurtosis pursuit.

    Classic fixed-point projection pursuit on the kurtosis contrast
    ``E[(w^T y)^4] - 3``: the update ``w <- E[y (w^T y)^3] - 3 w`` converges
    to extrema of excess kurtosis on whitened data, and deflation
    (Gram-Schmidt against already-found directions) yields an orthonormal
    basis.  Kurtosis is the moment-based cousin of the log-cosh score —
    cheaper and more aggressive on heavy tails, at the cost of outlier
    sensitivity.
    """

    name = "kurtosis"
    description = (
        "fixed-point kurtosis pursuit, ranked by |excess kurtosis| "
        "(moment-based; sharp on heavy tails and grouped structure)"
    )

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-8) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        with perf.timer("kurtosis_pursuit"):
            return self._pursue(whitened, rng)

    def _pursue(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        y = np.asarray(whitened, dtype=np.float64)
        d = y.shape[1]
        basis = np.zeros((d, d))
        for i in range(d):
            w = rng.standard_normal(d)
            w /= np.linalg.norm(w)
            for _ in range(self.max_iterations):
                proj = y @ w
                w_new = (y * (proj**3)[:, None]).mean(axis=0) - 3.0 * w
                # Deflate: stay orthogonal to the directions already found.
                w_new -= basis[:i].T @ (basis[:i] @ w_new)
                norm = np.linalg.norm(w_new)
                if norm < 1e-12:
                    # Degenerate update (gaussian direction); restart.
                    w_new = rng.standard_normal(d)
                    w_new -= basis[:i].T @ (basis[:i] @ w_new)
                    norm = np.linalg.norm(w_new)
                    if norm < 1e-12:
                        break
                w_new /= norm
                converged = abs(abs(float(w_new @ w)) - 1.0) < self.tolerance
                w = w_new
                if converged:
                    break
            basis[i] = w
        return basis

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        proj = np.asarray(whitened, dtype=np.float64) @ np.atleast_2d(
            np.asarray(directions, dtype=np.float64)
        ).T
        centred = proj - proj.mean(axis=0, keepdims=True)
        std = centred.std(axis=0, ddof=1)
        std[std == 0.0] = 1.0
        u = centred / std
        return np.mean(u**4, axis=0) - 3.0


class AxisObjective:
    """Axis-aligned baseline: the original attributes as candidate views.

    The paper's Table I compares ICA directions against the original
    attributes; this objective is that comparison column as a first-class
    citizen.  Directions are the canonical basis vectors and scores are the
    same signed log-cosh non-gaussianity ICA uses, so the axis view answers
    "which *raw attributes* still look unexplained?".
    """

    name = "axis"
    description = (
        "axis-aligned 'original attributes' baseline (Table I): canonical "
        "basis vectors ranked by log-cosh non-gaussianity"
    )

    def find_directions(
        self, whitened: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.eye(np.asarray(whitened).shape[1])

    def score(self, whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
        return ica_scores(whitened, directions)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

_lock = threading.RLock()
_registry: dict[str, Objective] = {}


def register(objective: Objective, *, overwrite: bool = False) -> Objective:
    """Add an objective to the global registry; returns it for chaining.

    Raises :class:`ValueError` when the name is already taken (unless
    ``overwrite=True``) or the object does not satisfy the
    :class:`Objective` protocol.
    """
    name = getattr(objective, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError("objective must carry a non-empty string 'name'")
    for attr in ("find_directions", "score"):
        if not callable(getattr(objective, attr, None)):
            raise ValueError(f"objective {name!r} must define {attr}()")
    with _lock:
        if not overwrite and name in _registry:
            raise ValueError(
                f"objective {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _registry[name] = objective
    return objective


def unregister(name: str) -> None:
    """Remove an objective (no-op if absent); built-ins can be re-added."""
    with _lock:
        _registry.pop(name, None)


def get(name: str | Objective) -> Objective:
    """Resolve an objective name (or pass an instance through).

    Raises
    ------
    UnknownObjectiveError
        When no objective with that name is registered.  This is a
        :class:`ValueError`, so pre-registry call sites keep their
        error-handling behaviour.
    """
    if not isinstance(name, str):
        if isinstance(name, Objective):
            return name
        raise UnknownObjectiveError(
            f"expected an objective name or instance, got {type(name).__name__}"
        )
    with _lock:
        objective = _registry.get(name)
    if objective is None:
        raise UnknownObjectiveError(
            f"unknown objective {name!r}; registered: {names()}"
        )
    perf.add("projection.objective_lookups")
    return objective


@contextmanager
def temporary(objective: Objective) -> Iterator[Objective]:
    """Register an objective for the duration of a ``with`` block.

    Shadows any same-named registration and restores it on exit — the
    scoped way to run an experiment with a reconfigured built-in (e.g.
    ``temporary(ICAObjective(restarts=8))``) without leaking global
    state.  The registry is process-global, so the override is visible
    to every thread inside the block; use it from experiment scripts and
    tests, not from concurrent servers.
    """
    name = getattr(objective, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError("objective must carry a non-empty string 'name'")
    with _lock:
        previous = _registry.get(name)
        _registry[name] = objective
    try:
        yield objective
    finally:
        with _lock:
            if previous is None:
                _registry.pop(name, None)
            else:
                _registry[name] = previous


def is_registered(name: str) -> bool:
    """True when ``get(name)`` would succeed."""
    with _lock:
        return name in _registry


def names() -> list[str]:
    """Registered objective names, sorted."""
    with _lock:
        return sorted(_registry)


def describe() -> list[dict]:
    """JSON-ready ``{"name", "description"}`` rows (``GET /v1/objectives``)."""
    with _lock:
        items = sorted(_registry.items())
    return [
        {
            "name": name,
            "description": str(getattr(obj, "description", "")),
        }
        for name, obj in items
    ]


def ensure_builtins(extra: Iterable[Objective] = ()) -> None:
    """(Re-)register the built-in objectives; idempotent."""
    with _lock:
        for objective in (
            PCAObjective(),
            ICAObjective(),
            KurtosisObjective(),
            AxisObjective(),
            *extra,
        ):
            _registry.setdefault(objective.name, objective)


ensure_builtins()
