"""FastICA with the log-cosh contrast, implemented from scratch.

The paper uses FastICA (Hyvärinen 1999) with the log-cosh G function as the
default method to find non-Gaussian directions in the whitened data
(Sec. II-C).  This is a complete NumPy implementation of the symmetric
fixed-point algorithm:

1. centre the input and whiten it by PCA (standard FastICA preprocessing —
   note this is the *algorithm's own* whitening, independent of the
   background-model whitening that produced its input);
2. iterate the fixed-point update ``W <- E[g(WZ) Z^T] - diag(E[g'(WZ)]) W``
   with ``g = tanh`` (the derivative of log cosh);
3. symmetrically decorrelate ``W <- (W W^T)^{-1/2} W`` after every step.

Components are returned as unit vectors in the *input* coordinate space so
they can be used directly as projection axes.

The symmetric variant is **batched**: ``n_restarts`` random initialisations
iterate as one stacked ``(R, k, k)`` tensor — one broadcast tanh/GEMM pass
and one batched-``eigh`` symmetric decorrelation per step instead of R
serial runs — and the restart with the strongest summed log-cosh contrast
wins.  Each restart's trajectory is arithmetically identical to the serial
loop preserved in :mod:`repro.projection.reference`, which the property
tests pin to 1e-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.errors import ConvergenceError, DataShapeError
from repro.linalg import inverse_sqrt_psd, inverse_sqrt_psd_batched

#: Eigenvalue threshold below which PCA-whitening drops a direction as
#: numerically degenerate (relative to the largest eigenvalue).
_RANK_TOL = 1e-10

_LOG2 = float(np.log(2.0))


def logcosh(x: np.ndarray) -> np.ndarray:
    """Elementwise ``log cosh x`` in the overflow-safe form.

    ``log cosh x = |x| + log1p(exp(-2|x|)) - log 2`` never exponentiates a
    positive argument, so it is exact for ``|x|`` far beyond the ~710
    cutoff where ``np.log(np.cosh(x))`` returns ``inf``.
    """
    ax = np.abs(x)
    return ax + np.log1p(np.exp(-2.0 * ax)) - _LOG2


def logcosh_contrast(wz: np.ndarray, axis: int = 0) -> np.ndarray:
    """``E[log cosh] - E[log cosh nu]`` along ``axis``, ``nu ~ N(0,1)``.

    The FastICA negentropy proxy: zero for gaussian projections, negative
    for super-gaussian ones, positive for sub-gaussian ones.  Multi-restart
    selection maximises the summed ``|contrast|`` across components.
    """
    # Imported lazily: scores imports this module's stable logcosh.
    from repro.projection.scores import GAUSSIAN_LOGCOSH_MEAN

    return np.mean(logcosh(wz), axis=axis) - GAUSSIAN_LOGCOSH_MEAN


# A note on "fusing" the contrast and derivative passes: tanh and the
# stable log cosh share the factor ``e = exp(-2|x|)`` (``tanh x =
# sign(x) (1-e)/(1+e)``, ``log cosh x = |x| + log1p(e) - log 2``), so a
# kernel computing both from one exponential looks attractive.  Measured,
# it loses: in NumPy every elementwise op is its own memory traversal, so
# the sign/divide/log1p temporaries cost more than the second libm call
# they replace (~0.65x vs separate ``np.tanh`` + ``logcosh`` passes at
# bench sizes).  The hot paths therefore evaluate exactly the half they
# need — the iteration uses ``tanh``, restart selection uses
# :func:`logcosh_contrast` — each in a single pass over the projected
# sources.


@dataclass(frozen=True)
class ICAResult:
    """Outcome of a FastICA run.

    Attributes
    ----------
    components:
        (k, d) array of unit vectors in input coordinates; rows are
        independent-component directions (unordered — rank them with
        :func:`repro.projection.scores.ica_scores`).
    n_iterations:
        Fixed-point iterations performed (by the winning restart in
        multi-restart mode).
    converged:
        Whether every direction met the tolerance within the iteration
        cap.  Meeting it on the final permitted iteration counts: a run
        whose last update at exactly ``max_iterations`` satisfies the
        alignment test reports ``converged=True``.
    n_restarts:
        How many random initialisations were searched.
    best_restart:
        Index of the winning initialisation (0 when ``n_restarts == 1``).
    contrast:
        Summed ``|log-cosh contrast|`` of the winning restart's sources
        (``None`` for the deflation variant, which has no restart search).
    """

    components: np.ndarray
    n_iterations: int
    converged: bool
    n_restarts: int = 1
    best_restart: int = 0
    contrast: float | None = None


def fit_fastica(
    data: np.ndarray,
    n_components: int | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    rng: np.random.Generator | None = None,
    algorithm: str = "symmetric",
    n_restarts: int = 1,
    seed: int | None = None,
) -> ICAResult:
    """Run FastICA with the log-cosh contrast.

    Parameters
    ----------
    data:
        Input matrix (n x d), e.g. the background-whitened data.
    n_components:
        Number of components to extract; defaults to the numerical rank of
        the data (at most d).
    max_iterations:
        Cap on fixed-point iterations (per component in deflation mode).
    tolerance:
        Convergence when every updated direction satisfies
        ``|<w_new, w_old>| > 1 - tolerance``.
    rng:
        Source of randomness for the initial unmixing matrix.  Pass a seeded
        generator for reproducible components.
    algorithm:
        ``"symmetric"`` — update all components jointly with symmetric
        decorrelation (Hyvärinen's parallel variant); ``"deflation"`` —
        extract components one at a time with Gram–Schmidt deflation.
        Deflation greedily locks onto the strongest non-Gaussian direction
        first, which matters when the data is a cluster mixture rather than
        a true linear ICA model: the symmetric variant can settle on a
        jointly-orthogonal compromise that splits a strong discriminating
        direction across components.
    n_restarts:
        Symmetric mode only: run this many random initialisations as one
        stacked tensor iteration and return the one with the strongest
        summed \\|log-cosh contrast\\|.  The fixed point the symmetric
        update reaches depends on where it starts; restarts turn that
        into a feature instead of seed-luck.
    seed:
        Convenience alternative to ``rng``: ``fit_fastica(x, seed=7)`` is
        ``fit_fastica(x, rng=np.random.default_rng(7))``.  Mutually
        exclusive with ``rng``.

    Returns
    -------
    ICAResult

    Raises
    ------
    DataShapeError
        On malformed input.
    ConvergenceError
        If the iteration produces non-finite values (signals degenerate
        input, e.g. all-constant data).
    """
    if algorithm not in ("symmetric", "deflation"):
        raise ValueError(
            f"unknown algorithm {algorithm!r}; use 'symmetric' or 'deflation'"
        )
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    if algorithm == "deflation" and n_restarts != 1:
        raise ValueError(
            "multi-restart search is a symmetric-mode feature; "
            "deflation extracts components greedily and takes no restarts"
        )
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise DataShapeError(
            f"FastICA needs a 2-D matrix with at least 2 rows, got {arr.shape}"
        )
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)

    with perf.timer("fastica"):
        # --- PCA whitening (the algorithm's own preprocessing) -----------
        with perf.timer("pca_whiten"):
            z, basis, scale, k = _pca_whiten(arr, n_components)

        # --- Fixed-point iteration ---------------------------------------
        best_restart = 0
        contrast: float | None = None
        if algorithm == "symmetric":
            inits = rng.standard_normal((n_restarts, k, k))
            with perf.timer("iterate"):
                w_all, its, conv = _symmetric_fastica_batched(
                    z, inits, max_iterations, tolerance
                )
            with perf.timer("select"):
                # One flattened GEMM + one stable log-cosh traversal
                # scores every restart's final sources at once.
                wz_all = z @ w_all.reshape(n_restarts * k, k).T
                strengths = np.sum(
                    np.abs(
                        logcosh_contrast(wz_all, axis=0).reshape(
                            n_restarts, k
                        )
                    ),
                    axis=1,
                )
            best_restart = int(np.argmax(strengths))
            w = w_all[best_restart]
            iterations = int(its[best_restart])
            converged = bool(conv[best_restart])
            contrast = float(strengths[best_restart])
            perf.add("projection.fastica_iterations", int(its.sum()))
        else:
            with perf.timer("iterate"):
                w, iterations, converged = _deflation_fastica(
                    z, k, max_iterations, tolerance, rng
                )
            perf.add("projection.fastica_iterations", iterations)
        perf.add("projection.fastica_runs")
        perf.add("projection.fastica_restarts", n_restarts)

        # --- Map unmixing rows back to input coordinates -----------------
        components = _components_from_unmixing(w, basis, scale)
    return ICAResult(
        components=components,
        n_iterations=iterations,
        converged=converged,
        n_restarts=n_restarts,
        best_restart=best_restart,
        contrast=contrast,
    )


def _pca_whiten(
    arr: np.ndarray, n_components: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Centre + PCA-whiten, dropping numerically degenerate directions.

    Returns ``(z, basis, scale, k)``: the (n, k) whitened matrix, the
    (d, k) top-variance eigenbasis, the per-direction scalings, and the
    retained dimensionality.
    """
    n = arr.shape[0]
    mean = arr.mean(axis=0)
    centred = arr - mean
    cov = (centred.T @ centred) / (n - 1)
    eigvals, eigvecs = np.linalg.eigh(0.5 * (cov + cov.T))
    top = float(eigvals[-1]) if eigvals.size else 0.0
    if top <= 0.0:
        raise ConvergenceError("FastICA input has zero variance")
    keep = eigvals > _RANK_TOL * top
    eigvals = eigvals[keep]
    eigvecs = eigvecs[:, keep]
    rank = int(eigvals.size)
    k = rank if n_components is None else min(n_components, rank)
    # Use the top-k variance directions for the whitening basis.
    order = np.argsort(eigvals)[::-1][:k]
    basis = eigvecs[:, order]                       # (d, k)
    scale = 1.0 / np.sqrt(eigvals[order])           # (k,)
    z = centred @ basis * scale                     # (n, k) whitened
    return z, basis, scale, k


def _components_from_unmixing(
    w: np.ndarray, basis: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Unmixing rows -> unit direction vectors in input coordinates.

    Source ``s_j = w_j^T z = w_j^T diag(scale) basis^T (x - mean)``, so the
    direction in input space is ``basis @ (scale * w_j)``.
    """
    components = (basis * scale) @ w.T              # (d, k)
    components = components.T                       # (k, d)
    norms = np.linalg.norm(components, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return components / norms


def _symmetric_fastica_batched(
    z: np.ndarray,
    inits: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """R parallel-update FastICA runs as one stacked tensor iteration.

    ``inits`` is the ``(R, k, k)`` stack of raw initial matrices.  Every
    step performs one broadcast ``tanh``/GEMM pass and one batched-eigh
    symmetric decorrelation over all still-active restarts; a restart
    whose directions stop rotating is frozen at its converged unmixing
    matrix (exactly where the serial loop would have stopped), so each
    slice reproduces the preserved serial trajectory bit-for-bit.

    Returns stacked ``(w, iterations, converged)`` of shapes
    ``(R, k, k)``, ``(R,)``, ``(R,)``.
    """
    n, k = z.shape[0], inits.shape[-1]
    restarts = inits.shape[0]
    w = _symmetric_decorrelation_batched(inits)
    iterations = np.zeros(restarts, dtype=np.intp)
    converged = np.zeros(restarts, dtype=bool)
    active = np.arange(restarts)
    # Reusable (n, Ra*k) work buffers, reallocated only when restarts
    # converge out of the stack.  Fresh per-iteration temporaries of this
    # size would leave the allocator's small-buffer cache and pay an
    # mmap + page-zeroing round trip every step — measurably slower than
    # the arithmetic they hold at interactive sizes.
    wz = sq = np.empty((0, 0))
    for step in range(1, max_iterations + 1):
        ra = active.size
        if wz.shape[1] != ra * k:
            wz = np.empty((n, ra * k))
            sq = np.empty((n, ra * k))
        w_act = w[active]                                   # (Ra, k, k)
        # All restarts share z, so their source projections are one big
        # GEMM against the row-stacked unmixing matrices — (n, k) @
        # (k, Ra*k) — instead of Ra strided gufunc matmuls (which copy
        # the non-contiguous slices and lose to plain dgemm at large n).
        w_flat = w_act.reshape(ra * k, k)
        np.matmul(z, w_flat.T, out=wz)                      # (n, Ra*k)
        # tanh only here: the log-cosh contrast is not needed until the
        # final selection pass, and evaluating it per step would double
        # the elementwise cost of the loop.
        g = np.tanh(wz, out=wz)
        np.multiply(g, g, out=sq)
        np.subtract(1.0, sq, out=sq)
        g_prime_mean = np.mean(sq, axis=0)                  # (Ra*k,)
        w_new = (g.T @ z) / n - g_prime_mean[:, None] * w_flat
        w_new = _symmetric_decorrelation_batched(w_new.reshape(ra, k, k))
        if not np.all(np.isfinite(w_new)):
            raise ConvergenceError("FastICA iteration produced non-finite values")
        # Convergence: directions stopped rotating (sign-invariant).
        alignment = np.abs(np.einsum("rij,rij->ri", w_new, w_act))
        w[active] = w_new
        iterations[active] = step
        done = np.all(alignment > 1.0 - tolerance, axis=1)
        if done.any():
            converged[active[done]] = True
            active = active[~done]
            if active.size == 0:
                break
    return w, iterations, converged


def _deflation_fastica(
    z: np.ndarray,
    k: int,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, bool]:
    """One-at-a-time fixed-point updates with Gram–Schmidt deflation."""
    n, dim = z.shape
    w = np.zeros((k, dim))
    total_iterations = 0
    all_converged = True
    for c in range(k):
        wc = rng.standard_normal(dim)
        wc /= np.linalg.norm(wc)
        component_converged = False
        for _ in range(max_iterations):
            total_iterations += 1
            wz = z @ wc
            g = np.tanh(wz)
            w_new = (z.T @ g) / n - float(np.mean(1.0 - g**2)) * wc
            if c:
                # Project out the already-extracted components.
                w_new -= w[:c].T @ (w[:c] @ w_new)
            norm = float(np.linalg.norm(w_new))
            if not np.isfinite(norm):
                raise ConvergenceError(
                    "FastICA iteration produced non-finite values"
                )
            if norm == 0.0:
                break
            w_new /= norm
            done = abs(float(w_new @ wc)) > 1.0 - tolerance
            wc = w_new
            if done:
                component_converged = True
                break
        all_converged = all_converged and component_converged
        w[c] = wc
    return w, total_iterations, all_converged


def _symmetric_decorrelation(w: np.ndarray) -> np.ndarray:
    """Return ``(W W^T)^{-1/2} W`` — makes the rows of W orthonormal."""
    return inverse_sqrt_psd(w @ w.T) @ w


def _symmetric_decorrelation_batched(w: np.ndarray) -> np.ndarray:
    """Batched ``(W W^T)^{-1/2} W`` over an ``(R, k, k)`` stack.

    One stacked-``eigh`` inverse root replaces R scalar decompositions;
    each slice matches :func:`_symmetric_decorrelation` on that slice to
    machine precision (same clamping, same operation order).
    """
    gram = np.matmul(w, np.swapaxes(w, -1, -2))
    return np.matmul(inverse_sqrt_psd_batched(gram), w)
