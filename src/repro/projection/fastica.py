"""FastICA with the log-cosh contrast, implemented from scratch.

The paper uses FastICA (Hyvärinen 1999) with the log-cosh G function as the
default method to find non-Gaussian directions in the whitened data
(Sec. II-C).  This is a complete NumPy implementation of the symmetric
fixed-point algorithm:

1. centre the input and whiten it by PCA (standard FastICA preprocessing —
   note this is the *algorithm's own* whitening, independent of the
   background-model whitening that produced its input);
2. iterate the fixed-point update ``W <- E[g(WZ) Z^T] - diag(E[g'(WZ)]) W``
   with ``g = tanh`` (the derivative of log cosh);
3. symmetrically decorrelate ``W <- (W W^T)^{-1/2} W`` after every step.

Components are returned as unit vectors in the *input* coordinate space so
they can be used directly as projection axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, DataShapeError
from repro.linalg import inverse_sqrt_psd

#: Eigenvalue threshold below which PCA-whitening drops a direction as
#: numerically degenerate (relative to the largest eigenvalue).
_RANK_TOL = 1e-10


@dataclass(frozen=True)
class ICAResult:
    """Outcome of a FastICA run.

    Attributes
    ----------
    components:
        (k, d) array of unit vectors in input coordinates; rows are
        independent-component directions (unordered — rank them with
        :func:`repro.projection.scores.ica_scores`).
    n_iterations:
        Fixed-point iterations performed.
    converged:
        Whether the tolerance was reached before the iteration cap.
    """

    components: np.ndarray
    n_iterations: int
    converged: bool


def fit_fastica(
    data: np.ndarray,
    n_components: int | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    rng: np.random.Generator | None = None,
    algorithm: str = "symmetric",
) -> ICAResult:
    """Run FastICA with the log-cosh contrast.

    Parameters
    ----------
    data:
        Input matrix (n x d), e.g. the background-whitened data.
    n_components:
        Number of components to extract; defaults to the numerical rank of
        the data (at most d).
    max_iterations:
        Cap on fixed-point iterations (per component in deflation mode).
    tolerance:
        Convergence when every updated direction satisfies
        ``|<w_new, w_old>| > 1 - tolerance``.
    rng:
        Source of randomness for the initial unmixing matrix.  Pass a seeded
        generator for reproducible components.
    algorithm:
        ``"symmetric"`` — update all components jointly with symmetric
        decorrelation (Hyvärinen's parallel variant); ``"deflation"`` —
        extract components one at a time with Gram–Schmidt deflation.
        Deflation greedily locks onto the strongest non-Gaussian direction
        first, which matters when the data is a cluster mixture rather than
        a true linear ICA model: the symmetric variant can settle on a
        jointly-orthogonal compromise that splits a strong discriminating
        direction across components.

    Returns
    -------
    ICAResult

    Raises
    ------
    DataShapeError
        On malformed input.
    ConvergenceError
        If the iteration produces non-finite values (signals degenerate
        input, e.g. all-constant data).
    """
    if algorithm not in ("symmetric", "deflation"):
        raise ValueError(
            f"unknown algorithm {algorithm!r}; use 'symmetric' or 'deflation'"
        )
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise DataShapeError(
            f"FastICA needs a 2-D matrix with at least 2 rows, got {arr.shape}"
        )
    rng = rng or np.random.default_rng(0)
    n, d = arr.shape

    # --- PCA whitening (the algorithm's own preprocessing) ---------------
    mean = arr.mean(axis=0)
    centred = arr - mean
    cov = (centred.T @ centred) / (n - 1)
    eigvals, eigvecs = np.linalg.eigh(0.5 * (cov + cov.T))
    top = float(eigvals[-1]) if eigvals.size else 0.0
    if top <= 0.0:
        raise ConvergenceError("FastICA input has zero variance")
    keep = eigvals > _RANK_TOL * top
    eigvals = eigvals[keep]
    eigvecs = eigvecs[:, keep]
    rank = int(eigvals.size)
    k = rank if n_components is None else min(n_components, rank)
    # Use the top-k variance directions for the whitening basis.
    order = np.argsort(eigvals)[::-1][:k]
    basis = eigvecs[:, order]                       # (d, k)
    scale = 1.0 / np.sqrt(eigvals[order])           # (k,)
    z = centred @ basis * scale                     # (n, k) whitened

    # --- Fixed-point iteration --------------------------------------------
    if algorithm == "symmetric":
        w, iterations, converged = _symmetric_fastica(
            z, k, max_iterations, tolerance, rng
        )
    else:
        w, iterations, converged = _deflation_fastica(
            z, k, max_iterations, tolerance, rng
        )

    # --- Map unmixing rows back to input coordinates ---------------------
    # Source s_j = w_j^T z = w_j^T diag(scale) basis^T (x - mean), so the
    # direction in input space is basis @ (scale * w_j).
    components = (basis * scale) @ w.T              # (d, k)
    components = components.T                       # (k, d)
    norms = np.linalg.norm(components, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    components = components / norms
    return ICAResult(
        components=components, n_iterations=iterations, converged=converged
    )


def _symmetric_fastica(
    z: np.ndarray,
    k: int,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, bool]:
    """Parallel fixed-point updates with symmetric decorrelation."""
    n = z.shape[0]
    w = _symmetric_decorrelation(rng.standard_normal((k, k)))
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        wz = z @ w.T                                # (n, k) current sources
        g = np.tanh(wz)
        g_prime_mean = np.mean(1.0 - g**2, axis=0)  # (k,)
        w_new = (g.T @ z) / n - g_prime_mean[:, None] * w
        w_new = _symmetric_decorrelation(w_new)
        if not np.all(np.isfinite(w_new)):
            raise ConvergenceError("FastICA iteration produced non-finite values")
        # Convergence: directions stopped rotating (sign-invariant).
        alignment = np.abs(np.einsum("ij,ij->i", w_new, w))
        w = w_new
        if np.all(alignment > 1.0 - tolerance):
            converged = True
            break
    return w, iterations, converged


def _deflation_fastica(
    z: np.ndarray,
    k: int,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, bool]:
    """One-at-a-time fixed-point updates with Gram–Schmidt deflation."""
    n, dim = z.shape
    w = np.zeros((k, dim))
    total_iterations = 0
    all_converged = True
    for c in range(k):
        wc = rng.standard_normal(dim)
        wc /= np.linalg.norm(wc)
        component_converged = False
        for _ in range(max_iterations):
            total_iterations += 1
            wz = z @ wc
            g = np.tanh(wz)
            w_new = (z.T @ g) / n - float(np.mean(1.0 - g**2)) * wc
            if c:
                # Project out the already-extracted components.
                w_new -= w[:c].T @ (w[:c] @ w_new)
            norm = float(np.linalg.norm(w_new))
            if not np.isfinite(norm):
                raise ConvergenceError(
                    "FastICA iteration produced non-finite values"
                )
            if norm == 0.0:
                break
            w_new /= norm
            done = abs(float(w_new @ wc)) > 1.0 - tolerance
            wc = w_new
            if done:
                component_converged = True
                break
        all_converged = all_converged and component_converged
        w[c] = wc
    return w, total_iterations, all_converged


def _symmetric_decorrelation(w: np.ndarray) -> np.ndarray:
    """Return ``(W W^T)^{-1/2} W`` — makes the rows of W orthonormal."""
    return inverse_sqrt_psd(w @ w.T) @ w
