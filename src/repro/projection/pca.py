"""Principal Component Analysis, from scratch on NumPy.

Used in two roles:

* classic PCA of the raw data (the baseline / initial view), and
* PCA of the *whitened* data, where directions are ranked not by raw
  variance but by how far their variance sits from 1 — the paper's view
  score ``(sigma^2 - log sigma^2 - 1)/2`` (footnote 1), i.e. the KL
  divergence from a unit-variance Gaussian along that direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.errors import DataShapeError


@dataclass(frozen=True)
class PCAResult:
    """Eigen-structure of a data matrix.

    Attributes
    ----------
    components:
        (d, d) array, rows are unit principal directions sorted by the
        ranking criterion (descending).
    variances:
        Variance of the data along each component (matching order).
    scores:
        Ranking score per component.  For plain PCA this equals the
        variance; for unit-deviation ranking it is the KL-style score.
    mean:
        Column mean removed before the eigendecomposition.
    """

    components: np.ndarray
    variances: np.ndarray
    scores: np.ndarray
    mean: np.ndarray

    def transform(self, data: np.ndarray, n_components: int | None = None) -> np.ndarray:
        """Project (centred) data onto the leading components."""
        k = self.components.shape[0] if n_components is None else n_components
        return (np.asarray(data, dtype=np.float64) - self.mean) @ self.components[:k].T


def unit_deviation_score(variances: np.ndarray) -> np.ndarray:
    """Paper's PCA view score: KL divergence of ``N(0, sigma^2)`` from ``N(0,1)``.

    ``(sigma^2 - log sigma^2 - 1)/2`` per direction; zero exactly at
    ``sigma^2 = 1`` and positive otherwise, so both inflated *and* collapsed
    directions rank as interesting.
    """
    var = np.maximum(np.asarray(variances, dtype=np.float64), 1e-300)
    return 0.5 * (var - np.log(var) - 1.0)


def fit_pca(data: np.ndarray, rank_by_unit_deviation: bool = False) -> PCAResult:
    """Eigendecompose the covariance of ``data``.

    Parameters
    ----------
    data:
        Matrix (n x d).
    rank_by_unit_deviation:
        If False (plain PCA) components are sorted by variance, descending.
        If True they are sorted by :func:`unit_deviation_score`, descending
        — the ordering used on whitened data to pick the most informative
        view.

    Returns
    -------
    PCAResult
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise DataShapeError(
            f"PCA needs a 2-D matrix with at least 2 rows, got shape {arr.shape}"
        )
    with perf.timer("pca_eig"):
        mean = arr.mean(axis=0)
        centred = arr - mean
        cov = (centred.T @ centred) / (arr.shape[0] - 1)
        eigvals, eigvecs = np.linalg.eigh(0.5 * (cov + cov.T))
        eigvals = np.maximum(eigvals, 0.0)
    if rank_by_unit_deviation:
        scores = unit_deviation_score(eigvals)
    else:
        scores = eigvals.copy()
    order = np.argsort(scores)[::-1]
    return PCAResult(
        components=eigvecs.T[order],
        variances=eigvals[order],
        scores=scores[order],
        mean=mean,
    )
