"""2-D view objects: the scatterplot axes SIDER shows the user.

A :class:`Projection2D` bundles the two direction vectors, their scores, and
the axis-label formatting used in the paper's figures, e.g.::

    ICA1[0.041] = +0.69 (X3) +0.69 (X2) +0.17 (X5) -0.14 (X1) -0.05 (X4)

The view also knows how to project data matrices (both the data and the
background ghost sample are displayed with the same axes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataShapeError
from repro.projection.fastica import fit_fastica
from repro.projection.pca import fit_pca
from repro.projection.scores import ica_scores, pca_scores


@dataclass(frozen=True)
class Projection2D:
    """A ranked 2-D projection of the data.

    Attributes
    ----------
    axes:
        (2, d) array of unit direction vectors (the view's x and y axes).
    scores:
        Score of each axis under the view objective (PCA or ICA score).
    objective:
        Which objective ranked the axes: ``"pca"`` or ``"ica"``.
    all_scores:
        Scores of *all* candidate directions sorted by |score| descending —
        the full rows of Table I.
    """

    axes: np.ndarray
    scores: np.ndarray
    objective: str
    all_scores: np.ndarray

    def project(self, data: np.ndarray) -> np.ndarray:
        """Project an (n x d) matrix onto the two view axes -> (n, 2)."""
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.axes.shape[1]:
            raise DataShapeError(
                f"cannot project shape {arr.shape} onto axes of "
                f"dimension {self.axes.shape[1]}"
            )
        return arr @ self.axes.T

    def axis_label(
        self, which: int, feature_names: list[str] | None = None, top: int = 5
    ) -> str:
        """Format one axis like the paper's figure labels.

        Parameters
        ----------
        which:
            0 for the x axis, 1 for the y axis.
        feature_names:
            Attribute names; defaults to ``X1..Xd``.
        top:
            How many largest-weight attributes to include.
        """
        axis = self.axes[which]
        d = axis.size
        names = feature_names or [f"X{j + 1}" for j in range(d)]
        order = np.argsort(np.abs(axis))[::-1][:top]
        terms = " ".join(f"{axis[j]:+.2f} ({names[j]})" for j in order)
        prefix = self.objective.upper()
        return f"{prefix}{which + 1}[{self.scores[which]:.3g}] = {terms}"

    def describe(self, feature_names: list[str] | None = None) -> str:
        """Two-line description of the full view."""
        return "\n".join(
            self.axis_label(k, feature_names=feature_names) for k in (0, 1)
        )


def most_informative_view(
    whitened: np.ndarray,
    objective: str = "pca",
    rng: np.random.Generator | None = None,
) -> Projection2D:
    """The 2-D projection in which data and background differ the most.

    Parameters
    ----------
    whitened:
        Background-whitened data Y.  Structure left in Y *is* the
        not-yet-explained structure, so the best view maximises a
        non-gaussianity score on Y.
    objective:
        ``"pca"`` — directions are principal components of Y ranked by the
        unit-deviation KL score; appropriate when variance differences carry
        the signal.
        ``"ica"`` — directions are FastICA components ranked by |log-cosh
        non-gaussianity|; finds clustered/multimodal structure even when all
        variances are already matched.  Both FastICA variants are run
        (symmetric and deflation) and the basis with the stronger top-2
        |scores| wins — on cluster mixtures the deflation variant often
        finds strong discriminating directions the symmetric compromise
        misses.
    rng:
        Randomness for FastICA initialisation (ignored for PCA).

    Returns
    -------
    Projection2D
    """
    arr = np.asarray(whitened, dtype=np.float64)
    if objective == "pca":
        result = fit_pca(arr, rank_by_unit_deviation=True)
        directions = result.components
        scores = pca_scores(arr, directions)
    elif objective == "ica":
        directions, scores = _best_ica_basis(arr, rng)
    else:
        raise ValueError(f"unknown objective {objective!r}; use 'pca' or 'ica'")

    order = np.argsort(np.abs(scores))[::-1]
    directions = directions[order]
    scores = scores[order]
    if directions.shape[0] < 2:
        # Degenerate rank-1 data: duplicate the single direction so the view
        # is still well-formed.
        directions = np.vstack([directions, directions])
        scores = np.concatenate([scores, scores])
    return Projection2D(
        axes=directions[:2].copy(),
        scores=scores[:2].copy(),
        objective=objective,
        all_scores=scores.copy(),
    )


def _best_ica_basis(
    arr: np.ndarray, rng: np.random.Generator | None
) -> tuple[np.ndarray, np.ndarray]:
    """Run both FastICA variants and keep the stronger basis.

    "Stronger" = larger sum of the top-2 |log-cosh scores|, i.e. the basis
    that yields the more informative 2-D view.
    """
    rng = rng or np.random.default_rng(0)
    best_directions: np.ndarray | None = None
    best_scores: np.ndarray | None = None
    best_strength = -np.inf
    for algorithm in ("symmetric", "deflation"):
        # Child generator per variant keeps the two runs independent while
        # remaining reproducible from the caller's generator.
        child = np.random.default_rng(rng.integers(0, 2**63))
        result = fit_fastica(arr, rng=child, algorithm=algorithm)
        scores = ica_scores(arr, result.components)
        strength = float(np.sum(np.sort(np.abs(scores))[::-1][:2]))
        if strength > best_strength:
            best_strength = strength
            best_directions = result.components
            best_scores = scores
    assert best_directions is not None and best_scores is not None
    return best_directions, best_scores
