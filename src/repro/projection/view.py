"""2-D view objects: the scatterplot axes SIDER shows the user.

A :class:`Projection2D` bundles the two direction vectors, their scores, and
the axis-label formatting used in the paper's figures, e.g.::

    ICA1[0.041] = +0.69 (X3) +0.69 (X2) +0.17 (X5) -0.14 (X1) -0.05 (X4)

The view also knows how to project data matrices (both the data and the
background ghost sample are displayed with the same axes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.errors import DataShapeError
from repro.projection import registry


@dataclass(frozen=True)
class Projection2D:
    """A ranked 2-D projection of the data.

    Attributes
    ----------
    axes:
        (2, d) array of unit direction vectors (the view's x and y axes).
    scores:
        Score of each axis under the view objective (PCA or ICA score).
    objective:
        Registry name of the objective that ranked the axes (``"pca"``,
        ``"ica"``, ``"kurtosis"``, ``"axis"``, or a registered plugin).
    all_scores:
        Scores of *all* candidate directions sorted by |score| descending —
        the full rows of Table I.
    """

    axes: np.ndarray
    scores: np.ndarray
    objective: str
    all_scores: np.ndarray

    def project(self, data: np.ndarray) -> np.ndarray:
        """Project an (n x d) matrix onto the two view axes -> (n, 2)."""
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.axes.shape[1]:
            raise DataShapeError(
                f"cannot project shape {arr.shape} onto axes of "
                f"dimension {self.axes.shape[1]}"
            )
        return arr @ self.axes.T

    def axis_label(
        self, which: int, feature_names: list[str] | None = None, top: int = 5
    ) -> str:
        """Format one axis like the paper's figure labels.

        Parameters
        ----------
        which:
            0 for the x axis, 1 for the y axis.
        feature_names:
            Attribute names; defaults to ``X1..Xd``.
        top:
            How many largest-weight attributes to include.
        """
        axis = self.axes[which]
        d = axis.size
        names = feature_names or [f"X{j + 1}" for j in range(d)]
        order = np.argsort(np.abs(axis))[::-1][:top]
        terms = " ".join(f"{axis[j]:+.2f} ({names[j]})" for j in order)
        prefix = self.objective.upper()
        return f"{prefix}{which + 1}[{self.scores[which]:.3g}] = {terms}"

    def describe(self, feature_names: list[str] | None = None) -> str:
        """Two-line description of the full view."""
        return "\n".join(
            self.axis_label(k, feature_names=feature_names) for k in (0, 1)
        )


def most_informative_view(
    whitened: np.ndarray,
    objective: str | registry.Objective = "pca",
    rng: np.random.Generator | None = None,
) -> Projection2D:
    """The 2-D projection in which data and background differ the most.

    Parameters
    ----------
    whitened:
        Background-whitened data Y.  Structure left in Y *is* the
        not-yet-explained structure, so the best view maximises the
        objective's score on Y.
    objective:
        A registered objective name (``registry.names()`` lists them —
        built-ins are ``"pca"``, ``"ica"``, ``"kurtosis"``, ``"axis"``) or
        an :class:`~repro.projection.registry.Objective` instance.
    rng:
        Randomness for direction-search initialisation (ignored by
        deterministic objectives such as PCA).

    Returns
    -------
    Projection2D

    Raises
    ------
    repro.projection.registry.UnknownObjectiveError
        When the objective name is not registered (a :class:`ValueError`).
    """
    obj = registry.get(objective)
    arr = np.asarray(whitened, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    # The "projection" timer makes every pursuit cost visible under a
    # projection/* path (REPRO_PERF=1 / GET /v1/stats), mirroring the
    # solver's solve/* tree: projection/find/<objective> is the direction
    # search, projection/score/<objective> the separate scoring pass.
    with perf.timer("projection"):
        with perf.timer(f"find/{obj.name}"):
            found = obj.find_directions(arr, rng)
        if isinstance(found, tuple):
            # The objective's search already scored its candidates.
            directions, scores = found
        else:
            directions, scores = found, None
        directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
        if scores is None:
            with perf.timer(f"score/{obj.name}"):
                scores = obj.score(arr, directions)
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        perf.add("projection.views_built")

    order = np.argsort(np.abs(scores))[::-1]
    directions = directions[order]
    scores = scores[order]
    if directions.shape[0] < 2:
        # Degenerate rank-1 data: duplicate the single direction so the view
        # is still well-formed.
        directions = np.vstack([directions, directions])
        scores = np.concatenate([scores, scores])
    return Projection2D(
        axes=directions[:2].copy(),
        scores=scores[:2].copy(),
        objective=obj.name,
        all_scores=scores.copy(),
    )
