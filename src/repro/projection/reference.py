"""Pre-vectorization reference implementations of the projection kernels.

These are the serial FastICA loops (and the naive log-cosh contrast) the
batched projection-pursuit kernels replaced, kept verbatim so that

* property tests can assert the batched kernels match them to 1e-10
  across random shapes, rank-deficient inputs, and zero-variance
  columns (the pyentropy estimator-parity discipline: every optimised
  estimator keeps its slow oracle), and
* ``repro bench`` can measure the batched/serial speedup on the exact
  code that used to run in production (the numbers committed to
  ``benchmarks/baselines.json`` and ``BENCH_projection.json``).

Nothing here is called by the production pipeline.  The block-diagonal
scatter GEMM's loop opponent lives in
:func:`repro.core.grouping.apply_by_class_loop` (it doubles as the
production fallback for ragged partitions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, DataShapeError
from repro.linalg import inverse_sqrt_psd

#: Mirror of :data:`repro.projection.fastica._RANK_TOL` at preservation time.
_RANK_TOL = 1e-10


def reference_symmetric_decorrelation(w: np.ndarray) -> np.ndarray:
    """Loop-era ``(W W^T)^{-1/2} W`` — makes the rows of W orthonormal."""
    return inverse_sqrt_psd(w @ w.T) @ w


def reference_logcosh_mean(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Naive ``E[log cosh x]`` along ``axis`` — the loop-era contrast.

    ``np.log(np.cosh(x))`` overflows for ``|x| > ~710``; the production
    kernels use the stable ``|x| + log1p(exp(-2|x|)) - log 2`` form.
    Standardised projections never reach the overflow regime, which is
    why this was good enough before batching.
    """
    return np.mean(np.log(np.cosh(x)), axis=axis)


def reference_symmetric_fastica(
    z: np.ndarray,
    k: int,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, bool]:
    """Serial parallel-update FastICA with symmetric decorrelation.

    Verbatim pre-batching ``_symmetric_fastica``: one ``(k, k)`` unmixing
    matrix, one tanh/matmul pass per iteration, scalar decorrelation.
    """
    n = z.shape[0]
    w = reference_symmetric_decorrelation(rng.standard_normal((k, k)))
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        wz = z @ w.T                                # (n, k) current sources
        g = np.tanh(wz)
        g_prime_mean = np.mean(1.0 - g**2, axis=0)  # (k,)
        w_new = (g.T @ z) / n - g_prime_mean[:, None] * w
        w_new = reference_symmetric_decorrelation(w_new)
        if not np.all(np.isfinite(w_new)):
            raise ConvergenceError("FastICA iteration produced non-finite values")
        # Convergence: directions stopped rotating (sign-invariant).
        alignment = np.abs(np.einsum("ij,ij->i", w_new, w))
        w = w_new
        if np.all(alignment > 1.0 - tolerance):
            converged = True
            break
    return w, iterations, converged


def reference_deflation_fastica(
    z: np.ndarray,
    k: int,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, bool]:
    """One-at-a-time fixed-point updates with Gram–Schmidt deflation."""
    n, dim = z.shape
    w = np.zeros((k, dim))
    total_iterations = 0
    all_converged = True
    for c in range(k):
        wc = rng.standard_normal(dim)
        wc /= np.linalg.norm(wc)
        component_converged = False
        for _ in range(max_iterations):
            total_iterations += 1
            wz = z @ wc
            g = np.tanh(wz)
            w_new = (z.T @ g) / n - float(np.mean(1.0 - g**2)) * wc
            if c:
                # Project out the already-extracted components.
                w_new -= w[:c].T @ (w[:c] @ w_new)
            norm = float(np.linalg.norm(w_new))
            if not np.isfinite(norm):
                raise ConvergenceError(
                    "FastICA iteration produced non-finite values"
                )
            if norm == 0.0:
                break
            w_new /= norm
            done = abs(float(w_new @ wc)) > 1.0 - tolerance
            wc = w_new
            if done:
                component_converged = True
                break
        all_converged = all_converged and component_converged
        w[c] = wc
    return w, total_iterations, all_converged


def _pca_whiten(
    arr: np.ndarray, n_components: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """The loop-era PCA-whitening preamble of ``fit_fastica``, verbatim."""
    n = arr.shape[0]
    mean = arr.mean(axis=0)
    centred = arr - mean
    cov = (centred.T @ centred) / (n - 1)
    eigvals, eigvecs = np.linalg.eigh(0.5 * (cov + cov.T))
    top = float(eigvals[-1]) if eigvals.size else 0.0
    if top <= 0.0:
        raise ConvergenceError("FastICA input has zero variance")
    keep = eigvals > _RANK_TOL * top
    eigvals = eigvals[keep]
    eigvecs = eigvecs[:, keep]
    rank = int(eigvals.size)
    k = rank if n_components is None else min(n_components, rank)
    order = np.argsort(eigvals)[::-1][:k]
    basis = eigvecs[:, order]                       # (d, k)
    scale = 1.0 / np.sqrt(eigvals[order])           # (k,)
    z = centred @ basis * scale                     # (n, k) whitened
    return z, basis, scale, k


def _components_from_unmixing(
    w: np.ndarray, basis: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Map unmixing rows back to unit vectors in input coordinates."""
    components = (basis * scale) @ w.T              # (d, k)
    components = components.T                       # (k, d)
    norms = np.linalg.norm(components, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return components / norms


def reference_fit_fastica(
    data: np.ndarray,
    n_components: int | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    rng: np.random.Generator | None = None,
    algorithm: str = "symmetric",
) -> tuple[np.ndarray, int, bool]:
    """The full pre-batching ``fit_fastica`` path.

    Returns ``(components, n_iterations, converged)`` — the fields of the
    production :class:`~repro.projection.fastica.ICAResult` — so parity
    tests and benchmarks run the identical preprocessing, iteration, and
    back-mapping the serial implementation shipped with.
    """
    if algorithm not in ("symmetric", "deflation"):
        raise ValueError(
            f"unknown algorithm {algorithm!r}; use 'symmetric' or 'deflation'"
        )
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise DataShapeError(
            f"FastICA needs a 2-D matrix with at least 2 rows, got {arr.shape}"
        )
    rng = rng or np.random.default_rng(0)
    z, basis, scale, k = _pca_whiten(arr, n_components)
    if algorithm == "symmetric":
        w, iterations, converged = reference_symmetric_fastica(
            z, k, max_iterations, tolerance, rng
        )
    else:
        w, iterations, converged = reference_deflation_fastica(
            z, k, max_iterations, tolerance, rng
        )
    return _components_from_unmixing(w, basis, scale), iterations, converged


def reference_multi_restart_symmetric(
    z: np.ndarray,
    inits: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Serial multi-restart symmetric FastICA: R independent loop runs.

    ``inits`` is the pre-drawn ``(R, k, k)`` stack of initial unmixing
    matrices (drawing them upfront is what lets the batched kernel
    consume the identical random numbers).  Returns the stacked results
    ``(w, iterations, converged, contrast)`` with shapes ``(R, k, k)``,
    ``(R,)``, ``(R,)``, ``(R,)``; the contrast is the summed
    ``|E[log cosh] - E[log cosh nu]|`` of each restart's final sources,
    evaluated with the same stable form the production kernel uses so
    that winner selection cannot diverge on ties.
    """
    from repro.projection.fastica import logcosh_contrast

    restarts = inits.shape[0]
    n = z.shape[0]
    w_all = np.empty_like(inits)
    iterations = np.zeros(restarts, dtype=np.intp)
    converged = np.zeros(restarts, dtype=bool)
    contrast = np.zeros(restarts)
    for r in range(restarts):
        w = reference_symmetric_decorrelation(inits[r])
        done = False
        its = 0
        for its in range(1, max_iterations + 1):
            wz = z @ w.T
            g = np.tanh(wz)
            g_prime_mean = np.mean(1.0 - g**2, axis=0)
            w_new = (g.T @ z) / n - g_prime_mean[:, None] * w
            w_new = reference_symmetric_decorrelation(w_new)
            if not np.all(np.isfinite(w_new)):
                raise ConvergenceError(
                    "FastICA iteration produced non-finite values"
                )
            alignment = np.abs(np.einsum("ij,ij->i", w_new, w))
            w = w_new
            if np.all(alignment > 1.0 - tolerance):
                done = True
                break
        w_all[r] = w
        iterations[r] = its
        converged[r] = done
        contrast[r] = float(np.sum(np.abs(logcosh_contrast(z @ w.T, axis=0))))
    return w_all, iterations, converged, contrast
