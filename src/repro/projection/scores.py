"""View scores: how interesting is a direction of the whitened data?

Two scores from the paper:

* **PCA score** — ``(sigma^2 - log sigma^2 - 1)/2``: the KL divergence of a
  zero-mean Gaussian with variance sigma^2 from the unit Gaussian.  Zero iff
  the whitened variance along the direction is exactly 1 (footnote 1).
* **ICA score** — signed non-gaussianity
  ``E[log cosh(v^T y)] - E[log cosh(nu)]`` with ``nu ~ N(0,1)``.  Negative
  for super-gaussian (heavy-tailed) directions, positive for sub-gaussian
  ones such as symmetric multimodal/clustered structure; Table I of the
  paper sorts directions by the absolute value.  Scores shrink towards zero
  as the background distribution absorbs the data's structure.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad

from repro import perf
from repro.errors import DataShapeError
from repro.projection.fastica import logcosh
from repro.projection.pca import unit_deviation_score

__all__ = [
    "GAUSSIAN_LOGCOSH_MEAN",
    "pca_scores",
    "ica_scores",
    "view_score_summary",
]


def _gaussian_logcosh_expectation() -> float:
    """``E[log cosh nu]`` for ``nu ~ N(0,1)``, by adaptive quadrature."""
    value, _ = quad(
        lambda x: np.log(np.cosh(x)) * np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi),
        -12.0,
        12.0,
    )
    return float(value)


#: ``E[log cosh nu]``, nu ~ N(0,1) ≈ 0.3746 — the gaussian reference level
#: of the ICA score.  Computed once at import time.
GAUSSIAN_LOGCOSH_MEAN = _gaussian_logcosh_expectation()


def pca_scores(whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
    """PCA view score of each direction on the whitened data.

    Parameters
    ----------
    whitened:
        Whitened data Y (n x d).
    directions:
        (k, d) array of unit direction vectors.

    Returns
    -------
    numpy.ndarray
        Score per direction (non-negative; 0 means "fully explained").
    """
    with perf.timer("score_unit_deviation"):
        proj = _project(whitened, directions)
        variances = proj.var(axis=0, ddof=1)
        perf.add("projection.score_evaluations", proj.shape[1])
        return unit_deviation_score(variances)


def ica_scores(whitened: np.ndarray, directions: np.ndarray) -> np.ndarray:
    """Signed log-cosh non-gaussianity of each direction.

    The projection is standardised first (zero mean, unit variance) so the
    score measures *shape* non-gaussianity, as in FastICA's negentropy
    approximation; the sign is kept (no squaring) to match the signed values
    reported in Table I.  Sign convention: sub-gaussian (flat/multimodal)
    directions score positive, super-gaussian (heavy-tailed) negative.

    Uses the overflow-safe :func:`repro.projection.fastica.logcosh`, which
    agrees with ``log(cosh(x))`` to machine precision on the standardised
    range this score operates in.
    """
    with perf.timer("score_logcosh"):
        proj = _project(whitened, directions)
        centred = proj - proj.mean(axis=0, keepdims=True)
        std = centred.std(axis=0, ddof=1)
        std[std == 0.0] = 1.0
        standardised = centred / std
        perf.add("projection.score_evaluations", proj.shape[1])
        return np.mean(logcosh(standardised), axis=0) - GAUSSIAN_LOGCOSH_MEAN


def view_score_summary(
    whitened: np.ndarray, directions: np.ndarray, objective: str = "ica"
) -> np.ndarray:
    """Scores for a set of candidate directions, sorted by |score| descending.

    This is the ordering used to pick the two axes of the next view and the
    ordering of the rows of Table I.  Any registered objective name (see
    :mod:`repro.projection.registry`) is accepted.
    """
    # Imported lazily: the registry builds on this module's score functions.
    from repro.projection import registry

    scores = np.atleast_1d(
        np.asarray(
            registry.get(objective).score(whitened, directions),
            dtype=np.float64,
        )
    )
    order = np.argsort(np.abs(scores))[::-1]
    return scores[order]


def _project(data: np.ndarray, directions: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64)
    dirs = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    if arr.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {arr.shape}")
    if dirs.shape[1] != arr.shape[1]:
        raise DataShapeError(
            f"direction dimension {dirs.shape[1]} != data dimension {arr.shape[1]}"
        )
    return arr @ dirs.T
