"""Solve cache: reuse fitted background models across sessions.

Fitting the MaxEnt background is the hot path of every view request, and
many requests repeat the exact same solve — users exploring the same
dataset mark the same clusters, forked sessions replay a shared prefix,
and a resumed session refits what the original already fitted.  The cache
keys a finished solve on a canonical hash of

    (data fingerprint, constraint-set fingerprint, solver options)

and installs the stored parameters into a :class:`BackgroundModel` instead
of re-solving.  Parameters are copied both into and out of the cache, so
no two sessions ever share mutable arrays.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro import obs
from repro.core.background import BackgroundModel
from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.core.solver import SolverOptions, SolverReport
from repro.io import constraint_set_fingerprint, data_fingerprint


@dataclass(frozen=True)
class _CacheEntry:
    """One stored solve: parameter copies plus the original report."""

    params: ClassParameters
    classes: EquivalenceClasses
    report: SolverReport


#: Key-schema marker folded into every cache key.  Bumped alongside the
#: unified feedback vocabulary (/v1 API): entries written by processes
#: running a different constraint-building vocabulary must never collide.
KEY_SCHEMA = "v2"


def solve_key(
    data_fp: str, constraints, options: SolverOptions | None = None
) -> str:
    """Canonical cache key for one MaxEnt solve."""
    options = options or SolverOptions()
    digest = hashlib.sha256()
    digest.update(KEY_SCHEMA.encode())
    digest.update(data_fp.encode())
    digest.update(constraint_set_fingerprint(constraints).encode())
    digest.update(
        f"{options.lambda_tolerance}:{options.drift_tolerance_factor}:"
        f"{options.time_cutoff}:{options.max_sweeps}".encode()
    )
    return digest.hexdigest()[:32]


class SolveCache:
    """Bounded LRU cache of fitted background-model parameters.

    Thread-safe; all bookkeeping happens under one lock, and array copies
    keep cached state isolated from the models that produced or consume it.

    Parameters
    ----------
    max_entries:
        Entries kept before the least-recently-used one is dropped.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    def key_for(self, model: BackgroundModel, data_fp: str | None = None) -> str:
        """Cache key of the solve the model's next ``fit()`` would perform.

        ``data_fp`` lets callers that already know the data fingerprint
        (e.g. the session manager, which computes it once per session)
        skip rehashing the whole matrix on every request.
        """
        if data_fp is None:
            data_fp = data_fingerprint(model.data)
        return solve_key(data_fp, model.constraints, model.solver_options)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def fetch(self, model: BackgroundModel, key: str) -> bool:
        """Install a cached solve into the model; True on a hit.

        On a hit the model behaves exactly as if :meth:`BackgroundModel.fit`
        had just returned — ``is_fitted`` is true and ``last_report`` carries
        the diagnostics of the original solve.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                obs.cache_lookup(hit=False)
                return False
            self._entries.move_to_end(key)
            self._hits += 1
            obs.cache_lookup(hit=True)
            params = ClassParameters(
                theta1=entry.params.theta1.copy(),
                sigma=entry.params.sigma.copy(),
                mean=entry.params.mean.copy(),
            )
            report = replace(entry.report)
        model._params = params          # noqa: SLF001 — intentional install,
        model._classes = entry.classes  # noqa: SLF001   same contract as
        model._report = report          # noqa: SLF001   io.load_model_parameters
        model._dirty = False            # noqa: SLF001
        return True

    def store(self, model: BackgroundModel, key: str) -> None:
        """Record a freshly fitted model's parameters under ``key``."""
        params, classes = model._require_fit()  # noqa: SLF001 — intentional
        entry = _CacheEntry(
            params=ClassParameters(
                theta1=params.theta1.copy(),
                sigma=params.sigma.copy(),
                mean=params.mean.copy(),
            ),
            classes=classes,
            report=replace(model.last_report, trace=[]),
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def fit(
        self, model: BackgroundModel, data_fp: str | None = None
    ) -> tuple[SolverReport, bool]:
        """Fit through the cache: fetch on a hit, solve-and-store on a miss.

        Returns ``(report, cache_hit)``.
        """
        key = self.key_for(model, data_fp=data_fp)
        if self.fetch(model, key):
            return model.last_report, True
        report = model.fit()
        self.store(model, key)
        return report, False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
