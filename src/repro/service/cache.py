"""Solve cache: reuse fitted background models across sessions and processes.

Fitting the MaxEnt background is the hot path of every view request, and
many requests repeat the exact same solve — users exploring the same
dataset mark the same clusters, forked sessions replay a shared prefix,
and a resumed session refits what the original already fitted.  The cache
keys a finished solve on a canonical hash of

    (data fingerprint, constraint-set fingerprint, solver options)

and installs the stored parameters into a :class:`BackgroundModel` instead
of re-solving.

Two tiers:

* **L1** — the in-process :class:`SolveCache` LRU (always present);
* **L2** (optional) — :class:`L2SolveCache`, an SQLite-backed table of
  the same entries keyed on the same content fingerprint, so hits are
  shareable *between worker processes* and *across restarts*.  The
  sharded service (``repro serve --workers N``) points every worker at
  one L2 file; a solve performed by worker A is a cache hit on worker B.

Isolation contract: **no cached state is mutable by a session.**  Array
parameters are copied both into and out of the cache.  The
:class:`~repro.core.equivalence.EquivalenceClasses` partition is *frozen*
on store — every array copied and marked read-only, so a session that
tried to write through it gets a loud ``ValueError`` instead of silently
corrupting other sessions' views — and every fetch hands out a fresh
``EquivalenceClasses`` instance over those read-only arrays, so the
per-instance ``scatter_plan``/``padded_scatter_plan`` memos are never
shared between sessions either.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.background import BackgroundModel
from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.core.solver import SolverOptions, SolverReport
from repro.io import constraint_set_fingerprint, data_fingerprint


@dataclass(frozen=True)
class _CacheEntry:
    """One stored solve: frozen parameter copies plus the original report."""

    params: ClassParameters
    classes: EquivalenceClasses
    report: SolverReport


#: Key-schema marker folded into every cache key.  Bumped alongside the
#: unified feedback vocabulary (/v1 API): entries written by processes
#: running a different constraint-building vocabulary must never collide.
KEY_SCHEMA = "v2"


def solve_key(
    data_fp: str, constraints, options: SolverOptions | None = None
) -> str:
    """Canonical cache key for one MaxEnt solve."""
    options = options or SolverOptions()
    digest = hashlib.sha256()
    digest.update(KEY_SCHEMA.encode())
    digest.update(data_fp.encode())
    digest.update(constraint_set_fingerprint(constraints).encode())
    digest.update(
        f"{options.lambda_tolerance}:{options.drift_tolerance_factor}:"
        f"{options.time_cutoff}:{options.max_sweeps}".encode()
    )
    return digest.hexdigest()[:32]


# ----------------------------------------------------------------------
# Frozen equivalence classes: share safely, never alias mutable state
# ----------------------------------------------------------------------


def _read_only_copy(arr: np.ndarray) -> np.ndarray:
    out = np.array(arr, copy=True)
    out.setflags(write=False)
    return out


def freeze_classes(classes: EquivalenceClasses) -> EquivalenceClasses:
    """Deep-copy a partition with every array marked read-only.

    The result is safe to share across sessions and cache tiers: any
    attempted in-place write raises ``ValueError: assignment destination
    is read-only`` instead of leaking into other sessions' cached views.
    """
    return EquivalenceClasses(
        n_rows=int(classes.n_rows),
        class_of_row=_read_only_copy(classes.class_of_row),
        class_counts=_read_only_copy(classes.class_counts),
        members=tuple(_read_only_copy(m) for m in classes.members),
        representative_rows=_read_only_copy(classes.representative_rows),
    )


def classes_view(frozen: EquivalenceClasses) -> EquivalenceClasses:
    """Fresh ``EquivalenceClasses`` instance over frozen (read-only) arrays.

    Sharing the arrays is safe — they are immutable — but the
    ``scatter_plan`` / ``padded_scatter_plan`` ``cached_property`` memos
    live on the *instance*, so handing every fetch its own instance keeps
    those derived arrays private to one session.
    """
    return EquivalenceClasses(
        n_rows=frozen.n_rows,
        class_of_row=frozen.class_of_row,
        class_counts=frozen.class_counts,
        members=frozen.members,
        representative_rows=frozen.representative_rows,
    )


# ----------------------------------------------------------------------
# L2: cross-process SQLite tier
# ----------------------------------------------------------------------


class L2SolveCache:
    """SQLite-backed solve-cache tier shared between processes.

    One table keyed on the content fingerprint; values are the fitted
    arrays serialised with ``np.savez`` (bit-exact float64 round-trip)
    plus a JSON sidecar carrying the partition shape and solver report.
    WAL-mode SQLite gives many concurrent reader processes plus one
    writer at a time; a busy writer is simply skipped (a cache must
    never block or break the solve path).

    Connections are opened lazily **per thread and per process** — the
    handle records the PID it was opened in and reopens after a
    ``fork()``, because a SQLite connection used across a fork can
    corrupt the shared database.

    Parameters
    ----------
    path:
        Database file; created (with parents) on first use.
    max_entries:
        Rows kept before the oldest (by store time) are dropped.
    """

    def __init__(self, path: str | Path, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.path = Path(path)
        self.max_entries = int(max_entries)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        self._conn()  # fail loudly on an unusable path at construction

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        pid = getattr(self._local, "pid", None)
        if conn is not None and pid == os.getpid():
            return conn
        # After fork() the inherited handle must not be touched (not even
        # closed): drop the reference and open a fresh connection.
        conn = sqlite3.connect(
            self.path, timeout=5.0, isolation_level=None
        )
        conn.execute("PRAGMA busy_timeout = 5000")
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS solves ("
            " key TEXT PRIMARY KEY,"
            " arrays BLOB NOT NULL,"
            " meta TEXT NOT NULL,"
            " created_at REAL NOT NULL)"
        )
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            conn.close()
        self._local.conn = None

    # -- serialisation -------------------------------------------------

    @staticmethod
    def _serialize(entry: _CacheEntry) -> tuple[bytes, str]:
        arrays = {
            "theta1": entry.params.theta1,
            "sigma": entry.params.sigma,
            "mean": entry.params.mean,
            "class_of_row": entry.classes.class_of_row,
            "class_counts": entry.classes.class_counts,
            "representative_rows": entry.classes.representative_rows,
        }
        for t, member in enumerate(entry.classes.members):
            arrays[f"member_{t}"] = member
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        report = entry.report
        meta = json.dumps(
            {
                "n_rows": int(entry.classes.n_rows),
                "n_members": len(entry.classes.members),
                "report": {
                    "converged": bool(report.converged),
                    "sweeps": int(report.sweeps),
                    "steps": int(report.steps),
                    "elapsed": float(report.elapsed),
                    "max_lambda_change": float(report.max_lambda_change),
                    "init_seconds": float(report.init_seconds),
                    "optim_seconds": float(report.optim_seconds),
                },
            }
        )
        return buf.getvalue(), meta

    @staticmethod
    def _deserialize(blob: bytes, meta_text: str) -> _CacheEntry:
        meta = json.loads(meta_text)
        with np.load(io.BytesIO(blob), allow_pickle=False) as arrays:
            params = ClassParameters(
                theta1=arrays["theta1"].copy(),
                sigma=arrays["sigma"].copy(),
                mean=arrays["mean"].copy(),
            )
            classes = EquivalenceClasses(
                n_rows=int(meta["n_rows"]),
                class_of_row=_read_only_copy(arrays["class_of_row"]),
                class_counts=_read_only_copy(arrays["class_counts"]),
                members=tuple(
                    _read_only_copy(arrays[f"member_{t}"])
                    for t in range(int(meta["n_members"]))
                ),
                representative_rows=_read_only_copy(
                    arrays["representative_rows"]
                ),
            )
        rep = meta["report"]
        report = SolverReport(
            converged=bool(rep["converged"]),
            sweeps=int(rep["sweeps"]),
            steps=int(rep["steps"]),
            elapsed=float(rep["elapsed"]),
            max_lambda_change=float(rep["max_lambda_change"]),
            init_seconds=float(rep.get("init_seconds", 0.0)),
            optim_seconds=float(rep.get("optim_seconds", 0.0)),
        )
        return _CacheEntry(params=params, classes=classes, report=report)

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> _CacheEntry | None:
        """The stored entry for ``key``, or None (also on any DB error)."""
        try:
            row = self._conn().execute(
                "SELECT arrays, meta FROM solves WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            return self._deserialize(row[0], row[1])
        except (sqlite3.Error, ValueError, KeyError, json.JSONDecodeError, OSError):
            # A corrupt or contended cache row is a miss, never an error:
            # drop it best-effort so the slot heals on the next store.
            try:
                self._conn().execute(
                    "DELETE FROM solves WHERE key = ?", (key,)
                )
            except sqlite3.Error:
                pass
            return None

    def put(self, key: str, entry: _CacheEntry) -> bool:
        """Store (or refresh) one entry; False when the write was skipped."""
        try:
            arrays, meta = self._serialize(entry)
            conn = self._conn()
            conn.execute(
                "INSERT INTO solves (key, arrays, meta, created_at) "
                "VALUES (?, ?, ?, ?) ON CONFLICT(key) DO UPDATE SET "
                "arrays = excluded.arrays, meta = excluded.meta, "
                "created_at = excluded.created_at",
                (key, arrays, meta, time.time()),
            )
            conn.execute(
                "DELETE FROM solves WHERE key IN ("
                " SELECT key FROM solves ORDER BY created_at DESC"
                f" LIMIT -1 OFFSET {self.max_entries})"
            )
            return True
        except (sqlite3.Error, OSError):
            return False

    def __len__(self) -> int:
        try:
            return int(
                self._conn().execute(
                    "SELECT COUNT(*) FROM solves"
                ).fetchone()[0]
            )
        except sqlite3.Error:
            return 0

    def __contains__(self, key: str) -> bool:
        try:
            return (
                self._conn().execute(
                    "SELECT 1 FROM solves WHERE key = ? LIMIT 1", (key,)
                ).fetchone()
                is not None
            )
        except sqlite3.Error:
            return False

    def clear(self) -> None:
        try:
            self._conn().execute("DELETE FROM solves")
        except sqlite3.Error:
            pass


class SolveCache:
    """Bounded LRU cache of fitted background-model parameters.

    Thread-safe; all bookkeeping happens under one lock, and array copies
    (plus the frozen-partition contract — see the module docstring) keep
    cached state isolated from the models that produced or consume it.

    Parameters
    ----------
    max_entries:
        Entries kept before the least-recently-used one is dropped.
    l2:
        Optional :class:`L2SolveCache` second tier.  L1 misses fall
        through to it (hits are promoted into L1) and fresh solves are
        written through, so entries are shared across worker processes
        and survive restarts.
    """

    def __init__(
        self, max_entries: int = 128, l2: L2SolveCache | None = None
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self.l2 = l2
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._l2_hits = 0
        self._l2_misses = 0
        self._l2_stores = 0

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    def key_for(self, model: BackgroundModel, data_fp: str | None = None) -> str:
        """Cache key of the solve the model's next ``fit()`` would perform.

        ``data_fp`` lets callers that already know the data fingerprint
        (e.g. the session manager, which computes it once per session)
        skip rehashing the whole matrix on every request.
        """
        if data_fp is None:
            data_fp = data_fingerprint(model.data)
        return solve_key(data_fp, model.constraints, model.solver_options)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def _install(self, model: BackgroundModel, entry: _CacheEntry) -> None:
        params = ClassParameters(
            theta1=entry.params.theta1.copy(),
            sigma=entry.params.sigma.copy(),
            mean=entry.params.mean.copy(),
        )
        report = replace(entry.report)
        model._params = params                        # noqa: SLF001
        model._classes = classes_view(entry.classes)  # noqa: SLF001
        model._report = report                        # noqa: SLF001
        model._dirty = False                          # noqa: SLF001

    def fetch(self, model: BackgroundModel, key: str) -> bool:
        """Install a cached solve into the model; True on a hit.

        On a hit the model behaves exactly as if :meth:`BackgroundModel.fit`
        had just returned — ``is_fitted`` is true and ``last_report`` carries
        the diagnostics of the original solve.  Checks L1 first, then the
        L2 tier (promoting its entry into L1).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if entry is not None:
            obs.cache_lookup(hit=True)
            self._install(model, entry)
            return True
        if self.l2 is not None:
            entry = self.l2.get(key)
            with self._lock:
                if entry is not None:
                    self._l2_hits += 1
                    self._hits += 1
                    self._put_l1_locked(key, entry)
                else:
                    self._l2_misses += 1
            if entry is not None:
                obs.cache_lookup(hit=True)
                self._install(model, entry)
                return True
        with self._lock:
            self._misses += 1
        obs.cache_lookup(hit=False)
        return False

    def _put_l1_locked(self, key: str, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def store(self, model: BackgroundModel, key: str) -> None:
        """Record a freshly fitted model's parameters under ``key``."""
        params, classes = model._require_fit()  # noqa: SLF001 — intentional
        entry = _CacheEntry(
            params=ClassParameters(
                theta1=params.theta1.copy(),
                sigma=params.sigma.copy(),
                mean=params.mean.copy(),
            ),
            classes=freeze_classes(classes),
            report=replace(model.last_report, trace=[]),
        )
        with self._lock:
            self._put_l1_locked(key, entry)
            self._stores += 1
        if self.l2 is not None and self.l2.put(key, entry):
            with self._lock:
                self._l2_stores += 1

    def fit(
        self, model: BackgroundModel, data_fp: str | None = None
    ) -> tuple[SolverReport, bool]:
        """Fit through the cache: fetch on a hit, solve-and-store on a miss.

        Returns ``(report, cache_hit)``.
        """
        key = self.key_for(model, data_fp=data_fp)
        if self.fetch(model, key):
            return model.last_report, True
        report = model.fit()
        self.store(model, key)
        return report, False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self.l2 is not None and key in self.l2

    def clear(self) -> None:
        """Drop every L1 entry (counters and the L2 tier are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            total = self._hits + self._misses
            payload = {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
            if self.l2 is not None:
                payload["l2"] = {
                    "path": str(self.l2.path),
                    "entries": len(self.l2),
                    "max_entries": self.l2.max_entries,
                    "hits": self._l2_hits,
                    "misses": self._l2_misses,
                    "stores": self._l2_stores,
                }
            return payload
