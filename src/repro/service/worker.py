"""Worker process of the sharded service.

A worker is the whole single-process service stack — ``SessionManager``
over the shared store, ``ServiceAPI`` dispatch, solve cache with the
shared L2 tier — behind a :class:`~repro.service.rpc.RpcServer` instead
of an HTTP socket.  The front-end router forwards HTTP-shaped requests
as RPC frames; everything below ``dispatch`` is byte-identical to the
single-process service, which is what makes the sharded deployment a
routing change rather than a rewrite.

RPC operations (the ``"op"`` field of each request frame):

==============  =====================================================
``request``     forward one HTTP-shaped request into ``api.dispatch``
``ping``        liveness probe; answers pid and worker id
``stats``       the manager's :meth:`SessionManager.stats`
``metrics``     ``MetricsRegistry.to_snapshot(source="worker-<id>")``
                for the front-end's commutative merge (PR 8)
``release``     drop one session from memory (ownership handoff)
``drain``       checkpoint every session (graceful shutdown, PR 9)
``shutdown``    drain, answer, then exit the serve loop
==============  =====================================================

Workers are started with the ``spawn`` multiprocessing method: a fresh
interpreter, no inherited locks, threads, or SQLite handles — the
fork-safety hazards this PR's store audit guards against simply never
arise on the main path.  :func:`worker_main` is the spawn entry point;
tests run the same runtime in-process via :class:`WorkerRuntime`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.service.rpc import RpcServer

__all__ = ["WorkerConfig", "WorkerRuntime", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs to build its service stack.

    Plain picklable fields only — this crosses the process boundary as
    the single ``spawn`` argument.  ``datasets`` names a registry:
    ``"cli"`` (the default) resolves :data:`repro.cli.DATASETS` inside
    the worker, so datasets load lazily per process instead of being
    pickled across.
    """

    worker_id: int
    socket_path: str
    store_url: str | None = None
    fsync: str = "batch"
    cache_size: int = 128
    l2_cache_path: str | None = None
    max_sessions: int = 64
    ttl_seconds: float | None = None
    default_deadline_ms: float | None = None
    obs: bool = False
    obs_log: str | None = None
    slow_ms: float = 500.0
    datasets: str = "cli"
    extra: dict = field(default_factory=dict)


def _resolve_datasets(spec: str):
    if spec == "cli":
        from repro.cli import DATASETS

        return DATASETS
    raise ValueError(f"unknown dataset registry {spec!r}")


def build_worker_api(config: WorkerConfig):
    """Construct the (api, manager) pair a worker serves."""
    from repro.service.api import ServiceAPI
    from repro.service.cache import L2SolveCache, SolveCache
    from repro.service.manager import SessionManager

    store = None
    if config.store_url is not None:
        from repro.store import store_from_url

        store = store_from_url(config.store_url, fsync=config.fsync)
    cache = None
    if config.cache_size > 0:
        l2 = (
            L2SolveCache(config.l2_cache_path)
            if config.l2_cache_path
            else None
        )
        cache = SolveCache(max_entries=config.cache_size, l2=l2)
    manager = SessionManager(
        _resolve_datasets(config.datasets),
        store=store,
        cache=cache,
        max_sessions=config.max_sessions,
        ttl_seconds=config.ttl_seconds,
    )
    api = ServiceAPI(manager, default_deadline_ms=config.default_deadline_ms)
    return api, manager


class WorkerRuntime:
    """One worker's serve loop: RPC frames in, dispatch results out.

    Usable two ways: :func:`worker_main` runs it as a spawned process's
    main loop; tests construct it around an in-process ``ServiceAPI``
    and call :meth:`serve_background` for a thread-backed worker with
    the exact same wire behaviour.
    """

    def __init__(self, api, manager, worker_id: int = 0) -> None:
        self.api = api
        self.manager = manager
        self.worker_id = worker_id
        self.stop_event = threading.Event()
        self._server: RpcServer | None = None

    # -- op handlers ---------------------------------------------------

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "request":
            return self._handle_request(request)
        if op == "ping":
            return {
                "ok": True,
                "pid": os.getpid(),
                "worker_id": self.worker_id,
                "sessions": self.manager.live_session_count(),
            }
        if op == "stats":
            stats = self.api.manager.stats()
            stats["worker_id"] = self.worker_id
            stats["pid"] = os.getpid()
            return {"ok": True, "stats": stats}
        if op == "metrics":
            return {"ok": True, "snapshot": self._metrics_snapshot()}
        if op == "release":
            released = self.manager.release(
                str(request.get("session_id", "")),
                wait_seconds=float(request.get("wait_seconds", 2.0)),
            )
            return {"ok": True, "released": released}
        if op == "drain":
            count = (
                self.manager.checkpoint_all()
                if self.manager.store is not None
                else 0
            )
            return {"ok": True, "checkpointed": count}
        if op == "shutdown":
            count = 0
            if self.manager.store is not None:
                try:
                    count = self.manager.checkpoint_all()
                except Exception:  # noqa: BLE001 — still shut down
                    count = 0
            self.stop_event.set()
            return {"ok": True, "checkpointed": count}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_request(self, request: dict) -> dict:
        status, payload = self.api.dispatch(
            str(request.get("method", "GET")),
            str(request.get("path", "/")),
            body=request.get("body"),
            query=request.get("query") or {},
            trace_id=request.get("trace_id"),
            deadline_ms=request.get("deadline_ms"),
            idempotency_key=request.get("idempotency_key"),
        )
        content_type = getattr(payload, "content_type", None)
        if content_type is not None:
            # TextResponse (Prometheus/profile text): not JSON, so it
            # rides as a tagged string and the router re-wraps it.
            return {
                "ok": True,
                "status": status,
                "text": str(payload),
                "content_type": content_type,
            }
        return {"ok": True, "status": status, "payload": payload}

    def _metrics_snapshot(self) -> dict | None:
        from repro import obs

        state = obs.active()
        if state is None:
            return None
        state.update_service_gauges(self.manager)
        return state.metrics.to_snapshot(source=f"worker-{self.worker_id}")

    # -- lifecycle -----------------------------------------------------

    def serve_background(self, socket_path: str) -> "WorkerRuntime":
        self._server = RpcServer(socket_path, self.handle).serve_background()
        return self

    def serve_until_shutdown(self, socket_path: str) -> None:
        self.serve_background(socket_path)
        self.stop_event.wait()
        self.close()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        self.stop_event.set()


def worker_main(config: WorkerConfig) -> None:
    """Spawn entry point: build the stack, serve RPC until ``shutdown``."""
    from repro import obs
    from repro.resilience import chaos

    chaos.configure_from_env(os.environ)
    if config.obs or config.obs_log:
        obs.configure(event_log=config.obs_log, slow_ms=config.slow_ms)
    api, manager = build_worker_api(config)
    runtime = WorkerRuntime(api, manager, worker_id=config.worker_id)
    runtime.serve_until_shutdown(config.socket_path)
