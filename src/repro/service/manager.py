"""`SessionManager`: many concurrent exploration sessions, safely.

The manager owns a registry of named datasets and a table of live
:class:`~repro.core.session.ExplorationSession` objects.  Around the
library's single-session loop it adds exactly what a server needs:

* **per-session locks** — two requests for the same session serialise,
  requests for different sessions run in parallel (fits release no GIL
  magic, but I/O and independent sessions overlap);
* **LRU eviction + TTL expiry** — bounded memory under many tenants;
  evicted/expired sessions are checkpointed to the
  :class:`~repro.service.store.SessionStore` first (when one is attached)
  and transparently resumed on the next request;
* **solve caching** — view requests route fits through a
  :class:`~repro.service.cache.SolveCache`, so identical belief states
  across sessions (same data, constraints, options) reuse one solve;
* **durability** (optional) — with a write-ahead-logged store from
  :mod:`repro.store` (``sqlite:`` / ``wal:``), every feedback batch is
  durable before its apply commits and crash recovery replays the log
  tail bit-for-bit; see the constructor's "Durable stores" notes.

Everything here is transport-agnostic; the HTTP layer in
:mod:`repro.service.api` is a thin JSON veneer over these methods.

Known limits (follow-up PRs):

* Checkpoints persist the *knowledge* state (constraints + undo stack),
  not RNG state or the current view.  Refits are deterministic, so a
  resumed ``pca`` session reproduces its next view exactly; ``ica``
  views draw from the session RNG, so a transparently resumed ICA
  session may present different (equally valid) axes than the ones a
  client saw before eviction — view-relative feedback should be posted
  against a freshly fetched view.
* Iteration records are checkpointed as an audit trail (labels and top
  scores in the JSON payload) but are not replayed on resume — views
  cannot be reconstructed without refitting each belief state — so a
  resumed session's ``iteration`` counter restarts at 0.  Clients that
  key on it should treat it as per-process, not per-session-lifetime.
* Checkpoint/resume I/O currently runs under the manager's global lock;
  with an on-disk store and many expiring sessions this serialises
  unrelated requests.  Moving the I/O outside the lock needs a
  per-entry eviction state and is deferred.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro import obs, perf
from repro.core.session import ExplorationSession
from repro.errors import ReproError
from repro.feedback import (
    ClusterFeedback,
    Feedback,
    ViewSelectionFeedback,
)
from repro.io import data_fingerprint, session_from_payload, session_to_payload
from repro.projection.view import Projection2D
from repro.service.cache import SolveCache
from repro.service.store import (
    SessionNotFoundError,
    SessionStore,
    StoreError,
    validate_session_id,
)
from repro.store.compaction import CompactionPolicy, should_compact
from repro.resilience import chaos
from repro.store.recovery import (
    load_session_state,
    replay_records,
    validate_recovery_policy,
)
from repro.store.wal import FeedbackLogStore

#: Idempotency keys remembered per session (LRU).  A retry storm only
#: ever replays recent keys, so a small window is plenty; the bound
#: keeps checkpoints and memory flat under adversarial key churn.
IDEMPOTENCY_WINDOW = 256


class UnknownDatasetError(ReproError):
    """The requested dataset name is not registered with the manager."""


class SessionExistsError(ReproError):
    """A session with the requested id already exists."""


class _Entry:
    """One live session plus its concurrency/eviction bookkeeping."""

    __slots__ = (
        "session_id",
        "session",
        "dataset",
        "standardize",
        "seed",
        "feature_names",
        "data_fp",
        "lock",
        "pins",
        "created_at",
        "last_access",
        "wal_seq",
        "tail_records",
        "idem",
    )

    def __init__(
        self,
        session_id: str,
        session: ExplorationSession,
        dataset: str,
        standardize: bool,
        seed: int | None,
        now: float,
        feature_names: list[str] | None = None,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.dataset = dataset
        self.standardize = standardize
        self.seed = seed
        self.feature_names = feature_names
        self.data_fp = data_fingerprint(session.model.data)
        self.lock = threading.RLock()
        # Pinned entries (currently checked out by a request) are never
        # evicted or expired; the pin count is managed under the manager's
        # global lock.
        self.pins = 0
        self.created_at = now
        self.last_access = now
        # Durable-store bookkeeping: the highest WAL sequence number this
        # in-memory session has applied (what the next checkpoint folds),
        # and how many log records have accumulated since the last fold
        # (what the compaction policy watches).
        self.wal_seq = 0
        self.tail_records = 0
        # Recently applied idempotency keys (key -> applied labels), LRU
        # bounded; persisted in checkpoints and rebuilt from the WAL tail
        # on resume, so dedup survives eviction and crash recovery.
        self.idem: OrderedDict[str, list[str]] = OrderedDict()

    def remember_key(self, key: str, applied: list[str]) -> None:
        self.idem[key] = list(applied)
        self.idem.move_to_end(key)
        while len(self.idem) > IDEMPOTENCY_WINDOW:
            self.idem.popitem(last=False)


class SessionManager:
    """Thread-safe registry of exploration sessions over named datasets.

    Parameters
    ----------
    datasets:
        Mapping of dataset name to one of: an ``(n, d)`` array, an object
        with a ``.data`` attribute (a dataset bundle), or a zero-argument
        callable returning either.  Callables are resolved lazily, once.
    store:
        Optional checkpoint store.  With a store, evicted and expired
        sessions survive (they are checkpointed first and lazily resumed
        on the next request), and explicit checkpoints enable cross-process
        resume.  Without one, eviction discards state.
    cache:
        ``True`` (default) to create a private :class:`SolveCache`, an
        existing cache to share one across managers, or ``None``/``False``
        to disable solve caching.
    max_sessions:
        Maximum number of sessions held in memory before LRU eviction.
    ttl_seconds:
        Idle time after which a session is expired out of memory
        (checkpointing it first when a store is attached).  ``None``
        disables expiry.
    recovery_policy:
        How resume treats a damaged feedback log on a durable store:
        ``"truncate"`` (default) recovers the valid prefix and warns,
        ``"fail"`` raises :class:`StoreError`.  Ignored for plain stores.
    compaction:
        When to fold a durable store's feedback log into a fresh
        checkpoint; defaults to :class:`CompactionPolicy` (64 tail
        records).  Pass ``CompactionPolicy(0)`` to disable automatic
        folding.  Ignored for plain stores.
    clock:
        Monotonic time source; injectable for tests.

    Durable stores
    --------------
    When ``store`` is also a :class:`~repro.store.wal.FeedbackLogStore`
    (``sqlite:`` / ``wal:``), every feedback batch and undo is appended
    to the write-ahead log *before* the in-memory apply commits, a
    genesis checkpoint is written at :meth:`create`, and resume replays
    the log tail through the normal ``apply_many`` codepath — so every
    acknowledged batch survives a crash bit-for-bit.
    """

    def __init__(
        self,
        datasets: Mapping[str, object],
        *,
        store: SessionStore | None = None,
        cache: SolveCache | bool | None = True,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        recovery_policy: str = "truncate",
        compaction: CompactionPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions <= 0:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self._datasets = dict(datasets)
        self._resolved: dict[str, np.ndarray] = {}
        self._feature_names: dict[str, list[str] | None] = {}
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self.store = store
        if cache is True:
            self.cache: SolveCache | None = SolveCache()
        elif cache is None or cache is False:
            self.cache = None
        else:
            # NB: identity checks above — an *empty* SolveCache is falsy
            # (it has __len__), but it is still a cache to use.
            self.cache = cache  # type: ignore[assignment]
        self.max_sessions = int(max_sessions)
        self.ttl_seconds = ttl_seconds
        self.durable = isinstance(store, FeedbackLogStore)
        self.recovery_policy = validate_recovery_policy(recovery_policy)
        self.compaction = (
            compaction if compaction is not None else CompactionPolicy()
        )
        self._clock = clock
        self._created = 0
        self._resumed = 0
        self._evicted = 0
        self._expired = 0
        self._checkpoints = 0
        self._wal_appends = 0
        self._wal_rollbacks = 0
        self._compactions = 0
        self._replayed_batches = 0
        self._deduplicated = 0
        self._released = 0

    # ------------------------------------------------------------------
    # Dataset registry
    # ------------------------------------------------------------------

    def dataset_names(self) -> list[str]:
        """Registered dataset names, sorted."""
        return sorted(self._datasets)

    def _data(self, name: str) -> np.ndarray:
        if name not in self._datasets:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {self.dataset_names()}"
            )
        with self._lock:
            if name not in self._resolved:
                obj = self._datasets[name]
                if callable(obj):
                    obj = obj()
                data = getattr(obj, "data", obj)
                names = getattr(obj, "feature_names", None)
                self._feature_names[name] = (
                    [str(n) for n in names] if names else None
                )
                self._resolved[name] = np.asarray(data, dtype=np.float64)
            return self._resolved[name]

    def feature_names(self, name: str) -> list[str] | None:
        """Attribute names of a registered dataset (None when unnamed).

        Resolved from the dataset bundle's ``feature_names`` the first time
        the dataset is loaded; plain arrays have no names.
        """
        self._data(name)
        with self._lock:
            names = self._feature_names.get(name)
        return list(names) if names else None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        dataset: str,
        objective: str = "pca",
        standardize: bool = False,
        seed: int | None = 0,
        session_id: str | None = None,
    ) -> str:
        """Create a fresh session on a registered dataset; returns its id."""
        data = self._data(dataset)
        session = ExplorationSession(
            data, objective=objective, standardize=standardize, seed=seed
        )
        sid = (
            validate_session_id(session_id)
            if session_id is not None
            else uuid.uuid4().hex[:16]
        )
        with self._lock:
            if sid in self._entries or (
                self.store is not None and sid in self.store
            ):
                raise SessionExistsError(f"session {sid!r} already exists")
            entry = _Entry(
                sid,
                session,
                dataset,
                standardize,
                seed,
                self._clock(),
                feature_names=self.feature_names(dataset),
            )
            self._entries[sid] = entry
            if self.durable:
                # Genesis checkpoint: recovery is always "checkpoint +
                # tail", so a session must be checkpointable from birth —
                # WAL records alone carry no dataset/seed information.
                try:
                    self._checkpoint_entry(entry)
                except StoreError:
                    del self._entries[sid]
                    raise
            self._created += 1
            self._expire_stale_locked()
            self._evict_locked()
        return sid

    def has(self, session_id: str) -> bool:
        """True when the session is live or resumable from the store."""
        with self._lock:
            if session_id in self._entries:
                return True
        return self.store is not None and session_id in self.store

    def list_sessions(self) -> list[dict]:
        """Summaries of all known sessions (in memory and checkpointed)."""
        with self._lock:
            self._expire_stale_locked()
            summaries = {
                sid: {
                    "session_id": sid,
                    "dataset": entry.dataset,
                    "objective": entry.session.objective,
                    "n_constraints": entry.session.model.n_constraints,
                    "in_memory": True,
                }
                for sid, entry in self._entries.items()
            }
        if self.store is not None:
            for sid in self.store.list_ids():
                if sid not in summaries:
                    summaries[sid] = {"session_id": sid, "in_memory": False}
        return [summaries[sid] for sid in sorted(summaries)]

    def delete(self, session_id: str, *, drop_checkpoint: bool = True) -> bool:
        """Forget a session; True if anything was removed."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
        removed = entry is not None
        if entry is not None:
            # Drain any in-flight request on this session before returning,
            # so a concurrent mutation cannot interleave with id reuse.
            # (Taken outside the global lock: the in-flight request's pin
            # release needs the global lock to finish.)
            with entry.lock:
                pass
        if self.store is not None and drop_checkpoint:
            if session_id in self.store:
                removed = True
            self.store.delete(session_id)
        return removed

    def release(
        self,
        session_id: str,
        *,
        checkpoint: bool | None = None,
        wait_seconds: float = 2.0,
    ) -> bool:
        """Drop one session from memory so another process can own it.

        The ownership-handoff primitive of the sharded service: when the
        front-end reroutes a session to a different worker (rebalance
        after a crash, a worker rejoining the ring), it first tells the
        previous owner to ``release`` — otherwise a stale in-memory copy
        could later be evicted and checkpoint *old* state over the new
        owner's progress.

        ``checkpoint=None`` (default) persists the session first only on
        a plain (non-durable) store; on a durable store every committed
        mutation is already in the write-ahead log, so the successor's
        checkpoint+tail recovery reproduces the state without a fold
        here.  Returns False — and keeps the session — when the session
        is still pinned by in-flight requests after ``wait_seconds`` or
        when a required checkpoint fails; the caller may retry.
        """
        with self._lock:
            entry = self._entries.get(session_id)
        if entry is None:
            return True  # nothing in memory: already safe to re-own
        deadline = self._clock() + max(wait_seconds, 0.0)
        with entry.lock:  # serialise with any request mid-flight on it
            do_checkpoint = (
                checkpoint
                if checkpoint is not None
                else (self.store is not None and not self.durable)
            )
            if do_checkpoint and self.store is not None:
                try:
                    self._checkpoint_entry(entry)
                except StoreError:
                    return False  # dropping now would lose state
            while True:
                with self._lock:
                    if self._entries.get(session_id) is not entry:
                        return True  # deleted/re-owned underneath us
                    if entry.pins == 0:
                        del self._entries[session_id]
                        self._released += 1
                        return True
                if self._clock() >= deadline:
                    return False  # a request is still queued on it
                time.sleep(0.01)

    @contextmanager
    def _checkout(self, session_id: str) -> Iterator[_Entry]:
        """Pin + lock one session for the duration of a request."""
        with self._lock:
            self._expire_stale_locked()
            entry = self._entries.get(session_id)
            if entry is None:
                entry = self._resume_locked(session_id)
            entry.pins += 1
            entry.last_access = self._clock()
            try:
                self._evict_locked()
            except BaseException:
                entry.pins -= 1  # a failed eviction must not leak the pin
                raise
        try:
            with entry.lock:
                yield entry
                entry.last_access = self._clock()
        finally:
            with self._lock:
                entry.pins -= 1

    def _resume_locked(self, session_id: str) -> _Entry:
        """Lazily rebuild a checkpointed session (global lock held).

        On a durable store this is full crash recovery: checkpoint +
        validated feedback-log tail replayed through ``apply_many``; on a
        plain store it is exactly the checkpoint.
        """
        if self.store is None:
            raise SessionNotFoundError(f"no session {session_id!r}")
        # raises SessionNotFoundError for unknown ids; StoreError (mapped
        # to the `corrupt_store` error kind by the API) for damage the
        # recovery policy refuses to truncate away
        state = load_session_state(
            self.store, session_id, policy=self.recovery_policy
        )
        payload = state.payload
        dataset = payload.get("dataset")
        if not isinstance(dataset, str):
            raise SessionNotFoundError(
                f"checkpoint for {session_id!r} names no dataset"
            )
        data = self._data(dataset)
        session = session_from_payload(
            data,
            payload.get("session", {}),
            standardize=bool(payload.get("standardize", False)),
            seed=payload.get("seed", 0),
        )
        replay_records(session, state.records)
        entry = _Entry(
            session_id,
            session,
            dataset,
            bool(payload.get("standardize", False)),
            payload.get("seed", 0),
            self._clock(),
            feature_names=self.feature_names(dataset),
        )
        entry.wal_seq = state.wal_seq
        entry.tail_records = len(state.records)
        # Rebuild the exactly-once dedup map: checkpointed keys first,
        # then any keys carried by the replayed WAL tail (batches that
        # committed after the last checkpoint — exactly the ones an
        # ambiguous-failure retry will resend).
        idem = payload.get("idempotency")
        if isinstance(idem, dict):
            for key, labels in idem.items():
                entry.remember_key(str(key), [str(l) for l in labels or []])
        for record in state.records:
            if record.kind == "feedback" and record.key is not None:
                entry.remember_key(
                    record.key,
                    [str(item.get("label", "")) for item in record.items],
                )
        self._entries[session_id] = entry
        self._resumed += 1
        self._replayed_batches += len(state.records)
        if state.records or state.warnings:
            obs.recovery(len(state.records), warnings=len(state.warnings))
        return entry

    # ------------------------------------------------------------------
    # Eviction / expiry / checkpointing
    # ------------------------------------------------------------------

    def _checkpoint_entry(self, entry: _Entry) -> None:
        """Persist the entry's knowledge state; folds the log when durable.

        The in-memory session already contains every logged record up to
        ``entry.wal_seq``, so the checkpoint covers them and the durable
        path prunes them in the same (transactional, on SQLite) step.
        """
        payload = {
            "session_id": entry.session_id,
            "dataset": entry.dataset,
            "standardize": entry.standardize,
            "seed": entry.seed,
            "wal_seq": entry.wal_seq,
            "session": session_to_payload(entry.session),
        }
        if entry.idem:
            # Applied idempotency keys ride in the checkpoint so dedup
            # survives eviction and a successor worker resuming the
            # session — retries across a handoff stay exactly-once.
            payload["idempotency"] = {
                key: list(labels) for key, labels in entry.idem.items()
            }
        if self.durable:
            pruned = self.store.checkpoint_and_prune(
                entry.session_id, payload, entry.wal_seq
            )
            entry.tail_records = 0
            if pruned:
                self._compactions += 1
                obs.compaction(pruned)
        else:
            self.store.put(entry.session_id, payload)
        self._checkpoints += 1

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_sessions:
            victims = sorted(
                (e for e in self._entries.values() if e.pins == 0),
                key=lambda e: e.last_access,
            )
            if not victims:
                return  # everything over the limit is mid-request
            victim = victims[0]
            if self.store is not None:
                try:
                    self._checkpoint_entry(victim)
                except StoreError:
                    # Evicting without a checkpoint would lose state; keep
                    # the session in memory (over the limit) and let the
                    # request that triggered eviction proceed.  Retried on
                    # the next eviction pass.
                    return
            del self._entries[victim.session_id]
            self._evicted += 1

    def _expire_stale_locked(self) -> None:
        if self.ttl_seconds is None:
            return
        deadline = self._clock() - self.ttl_seconds
        for entry in list(self._entries.values()):
            if entry.pins == 0 and entry.last_access < deadline:
                if self.store is not None:
                    try:
                        self._checkpoint_entry(entry)
                    except StoreError:
                        continue  # keep it live; a failing disk must not
                        # turn one idle session into 500s for everyone
                del self._entries[entry.session_id]
                self._expired += 1

    def checkpoint(self, session_id: str) -> None:
        """Persist one session's knowledge state to the store now."""
        if self.store is None:
            raise StoreError("no session store attached to this manager")
        with self._checkout(session_id) as entry:
            self._checkpoint_entry(entry)

    def checkpoint_all(self) -> int:
        """Checkpoint every in-memory session (e.g. on shutdown).

        Best-effort: a session whose write fails is skipped so one bad
        checkpoint cannot lose the state of every session after it.
        Returns the number successfully persisted.
        """
        if self.store is None:
            raise StoreError("no session store attached to this manager")
        count = 0
        with self._lock:
            ids = list(self._entries)
        for sid in ids:
            try:
                self.checkpoint(sid)
                count += 1
            except SessionNotFoundError:
                continue  # raced with a delete
            except StoreError:
                continue  # keep persisting the remaining sessions
        return count

    # ------------------------------------------------------------------
    # The interactive loop, multi-tenant
    # ------------------------------------------------------------------

    def _fit_with_cache(self, entry: _Entry) -> bool:
        """Bring the entry's model to a fitted state; True on a cache hit.

        On a miss the fresh solve is recorded so any session reaching the
        same belief state later (a fork, a replay, a resumed twin) skips it.
        """
        model = entry.session.model
        if model.is_fitted or self.cache is None:
            return False
        with perf.timer("service_fit"):
            _, hit = self.cache.fit(model, data_fp=entry.data_fp)
        perf.add("service.solve_cache_hits" if hit else "service.solves")
        return hit

    def view(
        self,
        session_id: str,
        objective: str | None = None,
        detail: bool = False,
    ) -> tuple[Projection2D, dict]:
        """Current most-informative view of one session.

        Fits route through the solve cache: if any session has already
        solved this exact belief state, the fitted parameters are installed
        instead of re-solving.  Returns ``(view, meta)`` where ``meta``
        carries ``cache_hit``, the iteration index, accumulated
        ``knowledge_nats``, and solver diagnostics.  With ``detail=True``
        the meta additionally carries the per-row ``row_surprise`` vector
        and the data ``projected`` onto the view axes — the observation an
        autonomous exploration policy needs to act like a user.
        """
        with self._checkout(session_id) as entry, perf.timer("service_view"):
            session = entry.session
            model = session.model
            cache_hit = self._fit_with_cache(entry)
            view = session.current_view(objective)
            report = model.last_report
            meta = {
                "cache_hit": cache_hit,
                "iteration": len(session.history) - 1,
                "feature_names": entry.feature_names,
                "knowledge_nats": float(model.knowledge_nats()),
                "solver": {
                    "converged": bool(report.converged),
                    "sweeps": int(report.sweeps),
                    "elapsed": float(report.elapsed),
                }
                if report is not None
                else None,
            }
            if detail:
                meta["row_surprise"] = model.row_surprise().tolist()
                meta["projected"] = view.project(model.data).tolist()
            return view, meta

    def apply_feedback(
        self,
        session_id: str,
        batch: Sequence[Feedback],
        idempotency_key: str | None = None,
    ) -> dict:
        """Apply a batch of typed feedback objects to one session.

        The single feedback codepath of the service: view-relative items
        are resolved against the view current at the start of the batch,
        any fit that needs routes through the solve cache, and the whole
        batch costs at most one background-model fit
        (:meth:`ExplorationSession.apply_many`).  Returns the session
        stats with the applied labels under ``"applied"``.

        With an ``idempotency_key``, a batch whose key was already
        applied is *not* re-applied: the stats carry the original labels
        and ``"duplicate": True``.  The key rides in the write-ahead
        record and in checkpoints, so dedup holds across eviction, crash
        recovery, and worker handoff — the exactly-once contract a
        client retry after an ambiguous failure depends on.
        """
        items = list(batch)
        obs.feedback_batch(len(items))
        with self._checkout(session_id) as entry, perf.timer("service_feedback"):
            if idempotency_key is not None and idempotency_key in entry.idem:
                entry.idem.move_to_end(idempotency_key)
                self._deduplicated += 1
                obs.feedback_deduplicated()
                stats = self._stats_locked(entry)
                stats["applied"] = list(entry.idem[idempotency_key])
                stats["duplicate"] = True
                return stats
            if any(isinstance(item, ViewSelectionFeedback) for item in items):
                # apply_many will need the current view's axes, which may
                # require a fit — route it through the cache first, exactly
                # like a view request.
                self._fit_with_cache(entry)
            record = self._wal_append(
                entry,
                [item.to_dict() for item in items],
                key=idempotency_key,
            )
            try:
                applied = entry.session.apply_many(items)
            except BaseException:
                # The write-ahead record is durable but the apply never
                # committed — annul it so recovery does not replay a batch
                # the client saw rejected.
                self._wal_rollback(entry, record)
                raise
            self._wal_commit(entry, record)
            if idempotency_key is not None:
                entry.remember_key(idempotency_key, applied)
            # Chaos point: the batch is durable and applied but no
            # response exists yet — the window where a worker death turns
            # a success into an ambiguous failure the client must retry.
            chaos.hit("manager.feedback.post_commit")
            stats = self._stats_locked(entry)
            stats["applied"] = applied
            return stats

    def _wal_append(
        self, entry: _Entry, items: list[dict], kind="feedback", key=None
    ):
        """Durably log one batch before its in-memory apply (durable only)."""
        if not self.durable:
            return None
        chaos.hit("store.append")
        start = time.perf_counter()
        record = self.store.append_feedback(
            entry.session_id, items, kind=kind, key=key
        )
        self._wal_appends += 1
        obs.wal_append(time.perf_counter() - start)
        return record

    def _wal_rollback(self, entry: _Entry, record) -> None:
        if record is None:
            return
        try:
            self.store.rollback_feedback(entry.session_id, record.seq)
            self._wal_rollbacks += 1
        except StoreError:
            # Best effort: the store just failed an append-shaped write,
            # so this likely fails too.  Surfacing the *original* apply
            # error matters more than the unlogged abort.
            pass

    def _wal_commit(self, entry: _Entry, record) -> None:
        """Bookkeeping after a logged apply committed; maybe compact."""
        if record is None:
            return
        entry.wal_seq = record.seq
        entry.tail_records += 1
        if should_compact(self.compaction, entry.tail_records):
            try:
                self._checkpoint_entry(entry)
            except StoreError:
                pass  # the batch is durable in the log; fold on a later pass

    def mark_cluster(
        self,
        session_id: str,
        rows: Sequence[int] | np.ndarray,
        label: str = "",
    ) -> dict:
        """Post "these points form a cluster" feedback to one session.

        Thin wrapper over :meth:`apply_feedback`, kept for callers of the
        pre-vocabulary API.
        """
        return self.apply_feedback(
            session_id,
            [ClusterFeedback(rows=rows, label=label)],
        )

    def mark_view_selection(
        self,
        session_id: str,
        rows: Sequence[int] | np.ndarray,
        label: str = "",
    ) -> dict:
        """Post feedback along the session's current view axes.

        Thin wrapper over :meth:`apply_feedback`.
        """
        return self.apply_feedback(
            session_id,
            [
                ViewSelectionFeedback(
                    rows=rows, label=label
                )
            ],
        )

    def undo(self, session_id: str) -> str | None:
        """Retract the session's most recent feedback action.

        On a durable store the undo is write-ahead logged like any other
        mutation (kind ``undo``), so recovery replays it and a recovered
        session does not resurrect retracted knowledge.
        """
        with self._checkout(session_id) as entry:
            record = self._wal_append(entry, [], kind="undo")
            try:
                label = entry.session.undo_last_feedback()
            except BaseException:
                self._wal_rollback(entry, record)
                raise
            if label is None:
                # Nothing to undo — no state change, nothing to replay.
                self._wal_rollback(entry, record)
            else:
                self._wal_commit(entry, record)
            return label

    def session_stats(self, session_id: str) -> dict:
        """Full status of one session (resuming it if checkpointed)."""
        with self._checkout(session_id) as entry:
            return self._stats_locked(entry)

    def _stats_locked(self, entry: _Entry) -> dict:
        session = entry.session
        return {
            "session_id": entry.session_id,
            "dataset": entry.dataset,
            "objective": session.objective,
            "standardize": entry.standardize,
            "seed": entry.seed,
            "shape": list(session.model.data.shape),
            "feature_names": entry.feature_names,
            "n_constraints": session.model.n_constraints,
            "n_iterations": len(session.history),
            "feedback": [label for label, _ in session.feedback_groups],
            "feedback_log": [fb.to_dict() for fb in session.feedback_log],
            "is_fitted": session.model.is_fitted,
        }

    def live_session_count(self) -> int:
        """Sessions currently held in memory (cheap; used by metrics)."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Manager-level counters plus cache statistics.

        The ``"perf"`` field is always present: a :mod:`repro.perf`
        snapshot extended with an ``"enabled"`` marker, so clients can
        tell "profiling off" (``enabled: false``, empty timings) from
        "profiling on but idle" without sniffing for missing keys.
        (Before v1.6 the field was ``null`` unless ``REPRO_PERF=1``;
        consumers that only read ``timings``/``counters`` when the field
        is truthy keep working unchanged.)
        """
        perf_snapshot = perf.snapshot()
        perf_snapshot["enabled"] = perf.is_enabled()
        with self._lock:
            in_memory = len(self._entries)
        return {
            "sessions_in_memory": in_memory,
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "created": self._created,
            "resumed": self._resumed,
            "evicted": self._evicted,
            "expired": self._expired,
            "checkpoints": self._checkpoints,
            "durable": self.durable,
            "wal_appends": self._wal_appends,
            "wal_rollbacks": self._wal_rollbacks,
            "compactions": self._compactions,
            "replayed_batches": self._replayed_batches,
            "deduplicated": self._deduplicated,
            "released": self._released,
            "datasets": self.dataset_names(),
            "store": type(self.store).__name__ if self.store is not None else None,
            "cache": self.cache.stats() if self.cache is not None else None,
            "perf": perf_snapshot,
        }
