"""Session persistence backends: where checkpointed sessions live.

A :class:`SessionStore` maps session ids to JSON payloads (the wrapped
:func:`repro.io.session_to_payload` form written by the manager).  Two
backends ship with the service:

* :class:`MemoryStore` — a thread-safe dict, for tests and ephemeral
  deployments;
* :class:`DirectoryStore` — one JSON file per session under a directory,
  written atomically, so a restarted server resumes where it left off.

Both only ever see plain JSON values; the data matrix itself is never
stored (sessions are resumed against a dataset the manager resolves).
"""

from __future__ import annotations

import json
import os
import re
import threading
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import ReproError

#: Session ids must be shell- and filename-safe.
_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class SessionNotFoundError(ReproError):
    """No session with the requested id exists in memory or in the store."""


class StoreError(ReproError):
    """A store operation failed (corrupt payload, I/O error)."""


class InvalidSessionIdError(StoreError):
    """A session id is unsafe to use as a key (caller error, not I/O)."""


def validate_session_id(session_id: str) -> str:
    """Return the id unchanged, or raise :class:`InvalidSessionIdError`."""
    if not isinstance(session_id, str) or not _ID_PATTERN.match(session_id):
        raise InvalidSessionIdError(
            f"invalid session id {session_id!r}: ids must be 1-128 "
            "characters of [A-Za-z0-9._-] and not start with a punctuation"
        )
    return session_id


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (some filesystems refuse dir fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SessionStore(ABC):
    """Abstract checkpoint store mapping session id -> JSON payload."""

    @abstractmethod
    def put(self, session_id: str, payload: dict) -> None:
        """Write (or overwrite) one session checkpoint."""

    @abstractmethod
    def get(self, session_id: str) -> dict:
        """Load one checkpoint; raise :class:`SessionNotFoundError` if absent."""

    @abstractmethod
    def delete(self, session_id: str) -> None:
        """Remove a checkpoint; missing ids are ignored."""

    @abstractmethod
    def list_ids(self) -> list[str]:
        """All stored session ids, sorted."""

    def __contains__(self, session_id: str) -> bool:
        try:
            self.get(session_id)
        except (SessionNotFoundError, StoreError):
            return False
        return True


class MemoryStore(SessionStore):
    """In-process store; payloads are JSON round-tripped to stay isolated.

    The round-trip both deep-copies (so a caller mutating a payload after
    ``put`` cannot corrupt the store) and guarantees that anything accepted
    here would also survive the on-disk backend.
    """

    def __init__(self) -> None:
        self._payloads: dict[str, str] = {}
        self._lock = threading.RLock()

    def put(self, session_id: str, payload: dict) -> None:
        validate_session_id(session_id)
        try:
            encoded = json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload is not JSON-serialisable: {exc}") from exc
        with self._lock:
            self._payloads[session_id] = encoded

    def get(self, session_id: str) -> dict:
        validate_session_id(session_id)
        with self._lock:
            encoded = self._payloads.get(session_id)
        if encoded is None:
            raise SessionNotFoundError(f"no stored session {session_id!r}")
        return json.loads(encoded)

    def delete(self, session_id: str) -> None:
        validate_session_id(session_id)
        with self._lock:
            self._payloads.pop(session_id, None)

    def list_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._payloads)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._payloads


class DirectoryStore(SessionStore):
    """One ``<session_id>.json`` file per session under a root directory.

    Writes go through a temporary file, an ``fsync``, an
    :func:`os.replace`, and an ``fsync`` of the directory — so a crash
    (process *or* power) mid-write leaves either the old complete
    checkpoint or the new complete checkpoint, never a truncated or
    disappearing one.  The two fsyncs cost on the order of a disk flush
    each (low milliseconds on common hardware) per checkpoint; that is
    acceptable here because checkpoints are per-eviction/per-request
    events, not per-feedback — the per-batch durable path is
    :mod:`repro.store`'s write-ahead log, which amortises its own syncs.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, session_id: str) -> Path:
        return self.root / f"{validate_session_id(session_id)}.json"

    def put(self, session_id: str, payload: dict) -> None:
        path = self._path(session_id)
        try:
            encoded = json.dumps(payload, indent=2)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload is not JSON-serialisable: {exc}") from exc
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(encoded)
                fh.flush()
                # Sync the content *before* the rename: os.replace is
                # atomic in the namespace, but without this a power cut
                # after the rename could expose an empty/partial file.
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            # ...and sync the directory so the rename itself is durable.
            _fsync_dir(self.root)
        except OSError as exc:
            raise StoreError(f"cannot write checkpoint {path}: {exc}") from exc

    def get(self, session_id: str) -> dict:
        path = self._path(session_id)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise SessionNotFoundError(
                f"no stored session {session_id!r} under {self.root}"
            ) from None
        except OSError as exc:
            raise StoreError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt checkpoint {path}: {exc}") from exc

    def delete(self, session_id: str) -> None:
        path = self._path(session_id)
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StoreError(f"cannot delete checkpoint {path}: {exc}") from exc

    def list_ids(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __contains__(self, session_id: str) -> bool:
        try:
            return self._path(session_id).exists()
        except StoreError:
            return False
