"""JSON API over a :class:`~repro.service.manager.SessionManager`.

This layer is transport-agnostic: :meth:`ServiceAPI.dispatch` takes an
HTTP-shaped request (method, path, query, decoded JSON body) and returns
``(status_code, payload_dict)``.  The stdlib HTTP server in
:mod:`repro.service.server` is one front-end; tests can call ``dispatch``
directly without opening a socket.

Routes (canonical, versioned under ``/v1``)
-------------------------------------------
==========  ====================================  ===============================
Method      Path                                  Meaning
==========  ====================================  ===============================
GET         /v1/health                            liveness probe
GET         /v1/datasets                          registered dataset names
GET         /v1/objectives                        registered view objectives
GET         /v1/stats                             manager + solve-cache statistics
GET         /v1/metrics                           Prometheus metrics (see below)
GET         /v1/metrics/history                   retained metrics time-series
GET         /v1/profile                           collapsed-stack profile
POST        /v1/admin/drain                       begin graceful drain (202)
GET         /v1/sessions                          list sessions (live + stored)
POST        /v1/sessions                          create a session
GET         /v1/sessions/{id}                     session status (resumes if stored)
DELETE      /v1/sessions/{id}                     delete session + checkpoint
GET         /v1/sessions/{id}/view                current most-informative view
POST        /v1/sessions/{id}/feedback            batch of typed feedback objects
POST        /v1/sessions/{id}/undo                retract last feedback action
POST        /v1/sessions/{id}/checkpoint          persist to the session store
==========  ====================================  ===============================

``GET /v1/stats`` always carries a ``"perf"`` object — a
:mod:`repro.perf` snapshot plus an explicit ``"enabled"`` flag (empty
timings while profiling is off), so clients never have to sniff for a
missing field.

``GET /v1/metrics`` serves the :mod:`repro.obs` metrics registry in
Prometheus text exposition format (``?format=json`` for the same data as
JSON).  While observability is disabled the route still answers 200 with
an empty exposition / ``{"enabled": false}`` so scrapers do not flap.

``GET /v1/metrics/history`` serves the ring-buffer time-series the
recorder retains (``?seconds=N`` trims the window, ``?derive=0`` skips
the server-side rate/quantile summary); it answers 200 with
``{"enabled": false}`` while retention is off.  ``GET /v1/profile``
serves the sampling profiler's collapsed-stack text (``?format=json``
for the raw table + stats) — flamegraph tooling can point straight at a
live server.  ``GET /v1/health`` stays exactly ``{"status": "ok"}``
unless the SLO engine is on, in which case it carries the full SLO
report (``status`` becomes ``ready``/``degraded``/``violating``).

Observability: when :mod:`repro.obs` is enabled, every dispatch runs
inside a request envelope — a per-request trace (id from the transport,
or minted) collects the perf-timer spans fired while handling it, the
per-route metrics are updated, and one structured event is emitted to
the JSONL sink; 4xx/5xx responses emit a typed ``error`` event instead.
The response payloads themselves are byte-identical with observability
on or off.

Every route is also reachable without the ``/v1`` prefix (legacy alias),
and ``POST /sessions/{id}/constraints`` — the pre-``/v1`` feedback route —
keeps working with its original single-item body shape.

The view route accepts ``?objective=<name>`` (rank with a different
registered objective) and ``?detail=1`` (include ``row_surprise`` and
``projected`` alongside ``knowledge_nats`` — the observation payload
autonomous exploration policies run on).

The batch feedback body is ``{"feedback": [<feedback dict>, ...]}`` where
each item is the ``to_dict`` form of a :mod:`repro.feedback` object, e.g.
``{"kind": "cluster", "rows": [0, 1, 2], "label": "blob"}``.  The whole
batch is validated before anything is applied, applies atomically, and
costs at most one background-model fit.

A known ``/v1`` path hit with the wrong method answers ``405`` with the
allowed methods in the payload's ``"allow"`` list; unknown paths — and
wrong-method hits on the legacy unversioned aliases, which keep their
historical blanket behaviour — answer ``404``.
"""

from __future__ import annotations

import re
import threading

import numpy as np

from repro import obs, perf
from repro.errors import ConstraintError, DataShapeError, ReproError
from repro.feedback import feedback_batch_from_payload, feedback_from_dict
from repro.projection import registry
from repro.projection.view import Projection2D
from repro.resilience import chaos
from repro.resilience.admission import (
    AdmissionController,
    DrainingError,
    OverloadedError,
)
from repro.resilience.chaos import ChaosError
from repro.resilience.deadline import DeadlineExceededError, deadline_scope
from repro.resilience.drain import DEFAULT_DRAIN_BUDGET, run_drain
from repro.service.manager import (
    SessionExistsError,
    SessionManager,
    UnknownDatasetError,
)
from repro.service.store import (
    InvalidSessionIdError,
    SessionNotFoundError,
    StoreError,
)

#: Version prefix of the canonical routes.
API_VERSION = "v1"

#: HTTP request headers the transport forwards into ``dispatch``.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"
IDEMPOTENCY_HEADER = "Idempotency-Key"

#: Normalized paths that bypass admission control and deadlines: an
#: overloaded or draining server must stay observable and steerable.
_EXEMPT_PATHS = frozenset(
    {
        "/health",
        "/metrics",
        "/metrics/history",
        "/profile",
        "/stats",
        "/admin/drain",
    }
)

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[^/]+)(?P<rest>(?:/[^/]+)?)$")

#: Per-thread request context: carries the idempotency key from
#: ``dispatch`` down to the feedback handler without widening every
#: handler signature.
_request_ctx = threading.local()


class TextResponse(str):
    """Non-JSON response body with its own content type.

    ``dispatch`` normally returns JSON-ready dict payloads; the
    Prometheus variant of the metrics route returns one of these instead,
    and the HTTP layer sends it verbatim with :attr:`content_type`.
    Direct (in-process) dispatch callers can treat it as a plain ``str``.
    """

    content_type = "text/plain; version=0.0.4; charset=utf-8"


class PlainTextResponse(TextResponse):
    """Plain-text body without the Prometheus exposition version tag."""

    content_type = "text/plain; charset=utf-8"


def view_to_dict(
    view: Projection2D,
    meta: dict | None = None,
    feature_names: list[str] | None = None,
) -> dict:
    """JSON form of a 2-D view (axes, scores, formatted labels).

    ``feature_names`` feeds the axis labels, so real attribute names show
    up instead of the ``X1..Xd`` placeholders.
    """
    payload = {
        "objective": view.objective,
        "axes": view.axes.tolist(),
        "scores": view.scores.tolist(),
        "all_scores": view.all_scores.tolist(),
        "top_score": float(np.max(np.abs(view.scores))),
        "axis_labels": [
            view.axis_label(0, feature_names=feature_names),
            view.axis_label(1, feature_names=feature_names),
        ],
    }
    if feature_names is not None:
        payload["feature_names"] = list(feature_names)
    if meta:
        payload.update(meta)
    return payload


class ServiceAPI:
    """Maps (method, path) requests onto :class:`SessionManager` calls.

    Parameters
    ----------
    manager:
        The session manager every route operates on.
    admission:
        Admission controller bounding in-flight session work; one with
        no bound is created when omitted (shedding off, drain still
        works).
    default_deadline_ms:
        Deadline budget applied to requests that carry no
        ``X-Repro-Deadline-Ms`` header; ``None`` means no default.
    drain_budget:
        Seconds the drain sequence waits for in-flight work.
    """

    def __init__(
        self,
        manager: SessionManager,
        *,
        admission: AdmissionController | None = None,
        default_deadline_ms: float | None = None,
        drain_budget: float = DEFAULT_DRAIN_BUDGET,
    ) -> None:
        self.manager = manager
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.default_deadline_ms = default_deadline_ms
        self.drain_budget = float(drain_budget)
        # Set by the serving layer: called after a drain finishes
        # checkpointing, to stop the HTTP server / exit the process.
        self.shutdown_hook = None
        self.last_drain: dict | None = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        trace_id: str | None = None,
        deadline_ms: float | None = None,
        idempotency_key: str | None = None,
    ) -> tuple[int, dict]:
        """Route one request; always returns ``(status, payload)``.

        ``payload`` is a JSON-ready dict everywhere except the Prometheus
        variant of the metrics route, which returns a
        :class:`TextResponse`.  ``trace_id`` is the (already validated)
        id the transport extracted from the request headers; it seeds the
        per-request trace and is ignored while observability is off.
        ``deadline_ms`` is the request's time budget (the
        ``X-Repro-Deadline-Ms`` header; the configured default applies
        when ``None``); ``idempotency_key`` is the ``Idempotency-Key``
        header, honoured by the feedback route.
        """
        body = body if body is not None else {}
        query = query if query is not None else {}
        method = method.upper()
        perf.add("api.requests")
        if obs.active() is None:
            status, payload, _kind = self._dispatch(
                method, path, body, query,
                deadline_ms=deadline_ms, idempotency_key=idempotency_key,
            )
            return status, payload
        with obs.request_envelope(method, path, trace_id) as req:
            status, payload, kind = self._dispatch(
                method, path, body, query,
                deadline_ms=deadline_ms, idempotency_key=idempotency_key,
            )
            error = payload.get("error") if isinstance(payload, dict) else None
            req.set_result(status, error=error, error_kind=kind)
        return status, payload

    def _dispatch(
        self,
        method: str,
        path: str,
        body: dict,
        query: dict,
        deadline_ms: float | None = None,
        idempotency_key: str | None = None,
    ) -> tuple[int, dict, str | None]:
        """Inner dispatcher: ``(status, payload, error_kind)``.

        ``error_kind`` is ``None`` on success and a stable
        machine-readable tag otherwise; it feeds the structured ``error``
        events only — JSON error payloads keep their historical shape
        (``{"error": ...}``, plus ``"allow"`` on 405), so the /v1 error
        contract is unchanged by observability.  Shed responses
        (``overloaded`` / ``draining``) and deadline expiries answer
        ``503``; the shed payloads carry ``retry_after`` so transports
        can emit a ``Retry-After`` header.
        """
        try:
            normalized, versioned = self._strip_version(path.rstrip("/") or "/")
            chaos.hit("api.dispatch")
            handlers = self._handlers_for(normalized)
            if handlers is None:
                return (
                    404,
                    {"error": f"no route {method} {path}"},
                    "unknown_route",
                )
            handler = handlers.get(method)
            if handler is None:
                if versioned:
                    allow = sorted(handlers)
                    return (
                        405,
                        {
                            "error": f"method {method} not allowed for {path}",
                            "allow": allow,
                        },
                        "method_not_allowed",
                    )
                # Legacy aliases keep their historical blanket 404 so
                # pre-/v1 clients see byte-identical error behaviour.
                return (
                    404,
                    {"error": f"no route {method} {path}"},
                    "unknown_route",
                )
            exempt = normalized in _EXEMPT_PATHS
            budget = (
                deadline_ms
                if deadline_ms is not None
                else self.default_deadline_ms
            )
            _request_ctx.idempotency_key = idempotency_key
            try:
                with self.admission.admit(exempt=exempt):
                    with deadline_scope(None if exempt else budget):
                        status, payload = handler(body, query)
            finally:
                _request_ctx.idempotency_key = None
            return status, payload, None
        except DeadlineExceededError as exc:
            # No retry_after: resending the same budget would burn it
            # again, so the client must decide, not blindly retry.
            obs.deadline_exceeded()
            return (
                503,
                {"error": str(exc), "kind": "deadline_exceeded"},
                "deadline_exceeded",
            )
        except OverloadedError as exc:
            obs.shed("overloaded")
            return (
                503,
                {
                    "error": str(exc),
                    "kind": "overloaded",
                    "retry_after": exc.retry_after,
                },
                "overloaded",
            )
        except DrainingError as exc:
            obs.shed("draining")
            return (
                503,
                {
                    "error": str(exc),
                    "kind": "draining",
                    "retry_after": exc.retry_after,
                },
                "draining",
            )
        except ChaosError as exc:
            return 500, {"error": str(exc)}, "chaos_injected"
        except SessionNotFoundError as exc:
            return 404, {"error": str(exc)}, "unknown_session"
        except UnknownDatasetError as exc:
            return 404, {"error": str(exc)}, "unknown_dataset"
        except SessionExistsError as exc:
            return 409, {"error": str(exc)}, "session_exists"
        except (
            DataShapeError,
            ConstraintError,
            InvalidSessionIdError,
            ValueError,
            TypeError,
            KeyError,
            OverflowError,
        ) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}, "bad_request"
        except StoreError as exc:
            # Damaged or unusable persistent state (corrupt checkpoint,
            # failed WAL append, recovery refusal) — still a server fault,
            # but tagged distinctly so operators can alert on storage rot
            # separately from handler bugs.  InvalidSessionIdError, though
            # a StoreError subclass, is caught as a 400 above: a bad id in
            # the request is the client's fault, not the store's.
            return (
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                "corrupt_store",
            )
        except ReproError as exc:
            return (
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                "server_error",
            )
        except Exception as exc:  # noqa: BLE001 — a handler bug must still
            # produce a JSON response, not a dropped connection.
            return (
                500,
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                "internal_error",
            )

    @staticmethod
    def _strip_version(path: str) -> tuple[str, bool]:
        """``/v1/...`` and legacy unversioned paths share one route table.

        Returns ``(normalized_path, was_versioned)``.
        """
        prefix = f"/{API_VERSION}"
        if path == prefix:
            return "/", True
        if path.startswith(prefix + "/"):
            return path[len(prefix):], True
        return path, False

    def _handlers_for(self, path: str) -> dict | None:
        """Method->handler table for one normalized path (None = 404)."""
        flat = {
            "/health": {"GET": self._health},
            "/datasets": {"GET": self._datasets},
            "/objectives": {"GET": self._objectives},
            "/stats": {"GET": self._stats},
            "/metrics": {"GET": self._metrics},
            "/metrics/history": {"GET": self._metrics_history},
            "/profile": {"GET": self._profile},
            "/admin/drain": {"POST": self._admin_drain},
            "/sessions": {
                "GET": self._list_sessions,
                "POST": self._create_session,
            },
        }
        if path in flat:
            return flat[path]
        match = _SESSION_PATH.match(path)
        if not match:
            return None
        sid = match.group("sid")
        rest = match.group("rest")
        per_session = {
            "": {"GET": self._session_status, "DELETE": self._delete_session},
            "/view": {"GET": self._view},
            "/feedback": {"POST": self._feedback},
            "/constraints": {"POST": self._constraints},
            "/undo": {"POST": self._undo},
            "/checkpoint": {"POST": self._checkpoint},
        }
        table = per_session.get(rest)
        if table is None:
            return None
        return {
            method: (lambda body, query, h=handler: h(sid, body, query))
            for method, handler in table.items()
        }

    # ------------------------------------------------------------------
    # Collection endpoints
    # ------------------------------------------------------------------

    def _health(self, body: dict, query: dict) -> tuple[int, dict]:
        # Payload kept exactly as in the unversioned API (clients assert
        # on it) — the SLO extension below only applies when the engine
        # is explicitly enabled (repro serve --obs).
        state = obs.active()
        if state is not None and state.slo is not None:
            report = state.slo_report()
            if report is not None:
                return 200, report
        return 200, {"status": "ok"}

    def _datasets(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"datasets": self.manager.dataset_names()}

    def _objectives(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"objectives": registry.describe()}

    def _stats(self, body: dict, query: dict) -> tuple[int, dict]:
        stats = self.manager.stats()
        stats["admission"] = self.admission.stats()
        registry_state = chaos.active_chaos()
        if registry_state is not None:
            stats["chaos"] = registry_state.stats()
        return 200, stats

    def _admin_drain(self, body: dict, query: dict) -> tuple[int, dict]:
        """Begin graceful drain; answers ``202`` immediately.

        The drain itself — wait for in-flight work, checkpoint every
        session, fire the shutdown hook — runs on a background thread so
        this response can still get out.  A repeat call while draining
        answers ``202`` with ``"initiated": false``.
        """
        budget = body.get("budget_seconds", self.drain_budget)
        budget = float(budget)
        if budget < 0:
            raise ValueError(f"budget_seconds must be >= 0, got {budget}")
        initiated = self.admission.begin_drain()
        if initiated:
            worker = threading.Thread(
                target=self._run_drain_background,
                args=(budget,),
                name="repro-drain",
                daemon=True,
            )
            worker.start()
        return 202, {
            "draining": True,
            "initiated": initiated,
            "budget_seconds": budget,
        }

    def _run_drain_background(self, budget: float) -> None:
        report = run_drain(
            self.admission,
            self.manager,
            budget_seconds=budget,
            shutdown=self.shutdown_hook,
        )
        self.last_drain = report
        state = obs.active()
        if state is not None and state.events is not None:
            state.events.emit({"event": "drain", **report})

    def _metrics(self, body: dict, query: dict) -> tuple[int, dict]:
        """Metrics scrape: Prometheus text by default, ``?format=json``.

        Answers 200 in both formats while observability is disabled (an
        explicitly-empty body) so scrapers and dashboards never flap when
        the feature is toggled.
        """
        as_json = str(query.get("format", "")).lower() == "json"
        state = obs.active()
        if state is None:
            if as_json:
                return 200, {"enabled": False, "families": {}}
            return 200, TextResponse("# repro observability disabled\n")
        state.update_service_gauges(self.manager)
        if as_json:
            return 200, {"enabled": True, "families": state.metrics.render_json()}
        return 200, TextResponse(state.metrics.render_prometheus())

    def _metrics_history(self, body: dict, query: dict) -> tuple[int, dict]:
        """Retained metrics time-series with server-side derivation.

        ``?seconds=N`` trims to the last N seconds; ``?derive=0`` skips
        the rate/windowed-quantile summary (raw samples only).  Answers
        ``{"enabled": false}`` while retention is off, mirroring the
        metrics route's never-flap contract.
        """
        state = obs.active()
        recorder = state.history if state is not None else None
        if recorder is None:
            return 200, {"enabled": False, "samples": []}
        seconds = query.get("seconds")
        window = recorder.window(float(seconds) if seconds else None)
        state.update_service_gauges(self.manager)
        payload: dict = {
            "enabled": True,
            "interval_seconds": recorder.interval,
            "capacity": recorder.capacity,
            "samples": window,
        }
        if str(query.get("derive", "1")).lower() not in ("0", "false", "no"):
            from repro.obs import timeseries as ts

            payload["derived"] = (
                ts.derive(window[0], window[-1]) if len(window) >= 2 else None
            )
        return 200, payload

    def _profile(self, body: dict, query: dict) -> tuple[int, dict]:
        """Collapsed-stack profile (text by default, ``?format=json``).

        The text body feeds flamegraph renderers directly; the JSON form
        carries ``{"stacks": {...}, ...stats}``.  Answers 200 with an
        explicit disabled marker while the profiler is off.
        """
        as_json = str(query.get("format", "")).lower() == "json"
        prof = obs.profiler()
        if prof is None:
            if as_json:
                return 200, {"enabled": False, "samples": 0, "stacks": {}}
            return 200, PlainTextResponse("# repro profiler disabled\n")
        if as_json:
            return 200, {"enabled": True, **prof.stats(),
                         "stacks": prof.stacks()}
        return 200, PlainTextResponse(prof.render_collapsed())

    def _list_sessions(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"sessions": self.manager.list_sessions()}

    def _create_session(self, body: dict, query: dict) -> tuple[int, dict]:
        dataset = body.get("dataset")
        if not isinstance(dataset, str):
            raise ValueError("body must carry a 'dataset' name")
        # Raises UnknownObjectiveError (a ValueError -> 400) when unknown.
        objective = registry.get(body.get("objective", "pca")).name
        seed = body.get("seed", 0)
        if seed is not None:
            seed = int(seed)
        sid = self.manager.create(
            dataset,
            objective=objective,
            standardize=bool(body.get("standardize", False)),
            seed=seed,
            session_id=body.get("session_id"),
        )
        return 201, {"session_id": sid, "dataset": dataset}

    # ------------------------------------------------------------------
    # Per-session endpoints
    # ------------------------------------------------------------------

    def _session_status(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        return 200, self.manager.session_stats(sid)

    def _delete_session(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        removed = self.manager.delete(sid)
        if not removed:
            raise SessionNotFoundError(f"no session {sid!r}")
        return 200, {"session_id": sid, "deleted": True}

    #: Query values accepted as "yes" for boolean flags like ``detail``.
    _TRUTHY = frozenset({"1", "true", "yes", "on", "full"})

    def _view(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        objective = query.get("objective")
        if objective is not None:
            objective = registry.get(objective).name  # 400 when unknown
        detail = str(query.get("detail", "")).lower() in self._TRUTHY
        view, meta = self.manager.view(sid, objective=objective, detail=detail)
        feature_names = meta.pop("feature_names", None)
        payload = view_to_dict(view, meta, feature_names=feature_names)
        payload["session_id"] = sid
        return 200, payload

    def _feedback(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        batch = feedback_batch_from_payload(body.get("feedback"))
        key = getattr(_request_ctx, "idempotency_key", None)
        stats = self.manager.apply_feedback(sid, batch, idempotency_key=key)
        return 200, stats

    def _constraints(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        """Legacy single-item feedback route (pre-``/v1`` body shape)."""
        item = feedback_from_dict(
            {
                "kind": body.get("kind", "cluster"),
                "rows": body.get("rows", []),
                "label": str(body.get("label", "")),
            }
        )
        return 200, self.manager.apply_feedback(sid, [item])

    def _undo(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        label = self.manager.undo(sid)
        return 200, {"session_id": sid, "undone": label}

    def _checkpoint(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        self.manager.checkpoint(sid)
        return 200, {"session_id": sid, "checkpointed": True}
