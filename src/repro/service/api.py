"""JSON API over a :class:`~repro.service.manager.SessionManager`.

This layer is transport-agnostic: :meth:`ServiceAPI.dispatch` takes an
HTTP-shaped request (method, path, query, decoded JSON body) and returns
``(status_code, payload_dict)``.  The stdlib HTTP server in
:mod:`repro.service.server` is one front-end; tests can call ``dispatch``
directly without opening a socket.

Routes (canonical, versioned under ``/v1``)
-------------------------------------------
==========  ====================================  ===============================
Method      Path                                  Meaning
==========  ====================================  ===============================
GET         /v1/health                            liveness probe
GET         /v1/datasets                          registered dataset names
GET         /v1/objectives                        registered view objectives
GET         /v1/stats                             manager + solve-cache statistics
GET         /v1/sessions                          list sessions (live + stored)
POST        /v1/sessions                          create a session
GET         /v1/sessions/{id}                     session status (resumes if stored)
DELETE      /v1/sessions/{id}                     delete session + checkpoint
GET         /v1/sessions/{id}/view                current most-informative view
POST        /v1/sessions/{id}/feedback            batch of typed feedback objects
POST        /v1/sessions/{id}/undo                retract last feedback action
POST        /v1/sessions/{id}/checkpoint          persist to the session store
==========  ====================================  ===============================

Every route is also reachable without the ``/v1`` prefix (legacy alias),
and ``POST /sessions/{id}/constraints`` — the pre-``/v1`` feedback route —
keeps working with its original single-item body shape.

The view route accepts ``?objective=<name>`` (rank with a different
registered objective) and ``?detail=1`` (include ``row_surprise`` and
``projected`` alongside ``knowledge_nats`` — the observation payload
autonomous exploration policies run on).

The batch feedback body is ``{"feedback": [<feedback dict>, ...]}`` where
each item is the ``to_dict`` form of a :mod:`repro.feedback` object, e.g.
``{"kind": "cluster", "rows": [0, 1, 2], "label": "blob"}``.  The whole
batch is validated before anything is applied, applies atomically, and
costs at most one background-model fit.

A known ``/v1`` path hit with the wrong method answers ``405`` with the
allowed methods in the payload's ``"allow"`` list; unknown paths — and
wrong-method hits on the legacy unversioned aliases, which keep their
historical blanket behaviour — answer ``404``.
"""

from __future__ import annotations

import re

import numpy as np

from repro import perf
from repro.errors import ConstraintError, DataShapeError, ReproError
from repro.feedback import feedback_batch_from_payload, feedback_from_dict
from repro.projection import registry
from repro.projection.view import Projection2D
from repro.service.manager import (
    SessionExistsError,
    SessionManager,
    UnknownDatasetError,
)
from repro.service.store import InvalidSessionIdError, SessionNotFoundError

#: Version prefix of the canonical routes.
API_VERSION = "v1"

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[^/]+)(?P<rest>(?:/[^/]+)?)$")


def view_to_dict(
    view: Projection2D,
    meta: dict | None = None,
    feature_names: list[str] | None = None,
) -> dict:
    """JSON form of a 2-D view (axes, scores, formatted labels).

    ``feature_names`` feeds the axis labels, so real attribute names show
    up instead of the ``X1..Xd`` placeholders.
    """
    payload = {
        "objective": view.objective,
        "axes": view.axes.tolist(),
        "scores": view.scores.tolist(),
        "all_scores": view.all_scores.tolist(),
        "top_score": float(np.max(np.abs(view.scores))),
        "axis_labels": [
            view.axis_label(0, feature_names=feature_names),
            view.axis_label(1, feature_names=feature_names),
        ],
    }
    if feature_names is not None:
        payload["feature_names"] = list(feature_names)
    if meta:
        payload.update(meta)
    return payload


class ServiceAPI:
    """Maps (method, path) requests onto :class:`SessionManager` calls."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, dict]:
        """Route one request; always returns ``(status, json_payload)``."""
        body = body if body is not None else {}
        query = query if query is not None else {}
        method = method.upper()
        perf.add("api.requests")
        try:
            normalized, versioned = self._strip_version(path.rstrip("/") or "/")
            handlers = self._handlers_for(normalized)
            if handlers is None:
                return 404, {"error": f"no route {method} {path}"}
            handler = handlers.get(method)
            if handler is None:
                if versioned:
                    allow = sorted(handlers)
                    return 405, {
                        "error": f"method {method} not allowed for {path}",
                        "allow": allow,
                    }
                # Legacy aliases keep their historical blanket 404 so
                # pre-/v1 clients see byte-identical error behaviour.
                return 404, {"error": f"no route {method} {path}"}
            return handler(body, query)
        except SessionNotFoundError as exc:
            return 404, {"error": str(exc)}
        except UnknownDatasetError as exc:
            return 404, {"error": str(exc)}
        except SessionExistsError as exc:
            return 409, {"error": str(exc)}
        except (
            DataShapeError,
            ConstraintError,
            InvalidSessionIdError,
            ValueError,
            TypeError,
            KeyError,
            OverflowError,
        ) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except ReproError as exc:
            # Includes StoreError: checkpoint I/O failures are server faults.
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # noqa: BLE001 — a handler bug must still
            # produce a JSON response, not a dropped connection.
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    @staticmethod
    def _strip_version(path: str) -> tuple[str, bool]:
        """``/v1/...`` and legacy unversioned paths share one route table.

        Returns ``(normalized_path, was_versioned)``.
        """
        prefix = f"/{API_VERSION}"
        if path == prefix:
            return "/", True
        if path.startswith(prefix + "/"):
            return path[len(prefix):], True
        return path, False

    def _handlers_for(self, path: str) -> dict | None:
        """Method->handler table for one normalized path (None = 404)."""
        flat = {
            "/health": {"GET": self._health},
            "/datasets": {"GET": self._datasets},
            "/objectives": {"GET": self._objectives},
            "/stats": {"GET": self._stats},
            "/sessions": {
                "GET": self._list_sessions,
                "POST": self._create_session,
            },
        }
        if path in flat:
            return flat[path]
        match = _SESSION_PATH.match(path)
        if not match:
            return None
        sid = match.group("sid")
        rest = match.group("rest")
        per_session = {
            "": {"GET": self._session_status, "DELETE": self._delete_session},
            "/view": {"GET": self._view},
            "/feedback": {"POST": self._feedback},
            "/constraints": {"POST": self._constraints},
            "/undo": {"POST": self._undo},
            "/checkpoint": {"POST": self._checkpoint},
        }
        table = per_session.get(rest)
        if table is None:
            return None
        return {
            method: (lambda body, query, h=handler: h(sid, body, query))
            for method, handler in table.items()
        }

    # ------------------------------------------------------------------
    # Collection endpoints
    # ------------------------------------------------------------------

    def _health(self, body: dict, query: dict) -> tuple[int, dict]:
        # Payload kept exactly as in the unversioned API (clients assert on it).
        return 200, {"status": "ok"}

    def _datasets(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"datasets": self.manager.dataset_names()}

    def _objectives(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"objectives": registry.describe()}

    def _stats(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, self.manager.stats()

    def _list_sessions(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"sessions": self.manager.list_sessions()}

    def _create_session(self, body: dict, query: dict) -> tuple[int, dict]:
        dataset = body.get("dataset")
        if not isinstance(dataset, str):
            raise ValueError("body must carry a 'dataset' name")
        # Raises UnknownObjectiveError (a ValueError -> 400) when unknown.
        objective = registry.get(body.get("objective", "pca")).name
        seed = body.get("seed", 0)
        if seed is not None:
            seed = int(seed)
        sid = self.manager.create(
            dataset,
            objective=objective,
            standardize=bool(body.get("standardize", False)),
            seed=seed,
            session_id=body.get("session_id"),
        )
        return 201, {"session_id": sid, "dataset": dataset}

    # ------------------------------------------------------------------
    # Per-session endpoints
    # ------------------------------------------------------------------

    def _session_status(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        return 200, self.manager.session_stats(sid)

    def _delete_session(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        removed = self.manager.delete(sid)
        if not removed:
            raise SessionNotFoundError(f"no session {sid!r}")
        return 200, {"session_id": sid, "deleted": True}

    #: Query values accepted as "yes" for boolean flags like ``detail``.
    _TRUTHY = frozenset({"1", "true", "yes", "on", "full"})

    def _view(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        objective = query.get("objective")
        if objective is not None:
            objective = registry.get(objective).name  # 400 when unknown
        detail = str(query.get("detail", "")).lower() in self._TRUTHY
        view, meta = self.manager.view(sid, objective=objective, detail=detail)
        feature_names = meta.pop("feature_names", None)
        payload = view_to_dict(view, meta, feature_names=feature_names)
        payload["session_id"] = sid
        return 200, payload

    def _feedback(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        batch = feedback_batch_from_payload(body.get("feedback"))
        stats = self.manager.apply_feedback(sid, batch)
        return 200, stats

    def _constraints(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        """Legacy single-item feedback route (pre-``/v1`` body shape)."""
        item = feedback_from_dict(
            {
                "kind": body.get("kind", "cluster"),
                "rows": body.get("rows", []),
                "label": str(body.get("label", "")),
            }
        )
        return 200, self.manager.apply_feedback(sid, [item])

    def _undo(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        label = self.manager.undo(sid)
        return 200, {"session_id": sid, "undone": label}

    def _checkpoint(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        self.manager.checkpoint(sid)
        return 200, {"session_id": sid, "checkpointed": True}
