"""JSON API over a :class:`~repro.service.manager.SessionManager`.

This layer is transport-agnostic: :meth:`ServiceAPI.dispatch` takes an
HTTP-shaped request (method, path, query, decoded JSON body) and returns
``(status_code, payload_dict)``.  The stdlib HTTP server in
:mod:`repro.service.server` is one front-end; tests can call ``dispatch``
directly without opening a socket.

Routes
------
==========  =================================  =================================
Method      Path                               Meaning
==========  =================================  =================================
GET         /health                            liveness probe
GET         /datasets                          registered dataset names
GET         /stats                             manager + solve-cache statistics
GET         /sessions                          list sessions (live + stored)
POST        /sessions                          create a session
GET         /sessions/{id}                     session status (resumes if stored)
DELETE      /sessions/{id}                     delete session + checkpoint
GET         /sessions/{id}/view                current most-informative view
POST        /sessions/{id}/constraints         post cluster / 2-D feedback
POST        /sessions/{id}/undo                retract last feedback action
POST        /sessions/{id}/checkpoint          persist to the session store
==========  =================================  =================================
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.errors import ConstraintError, DataShapeError, ReproError
from repro.projection.view import Projection2D
from repro.service.manager import (
    SessionExistsError,
    SessionManager,
    UnknownDatasetError,
)
from repro.service.store import InvalidSessionIdError, SessionNotFoundError

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[^/]+)(?P<rest>(?:/[^/]+)?)$")


def view_to_dict(view: Projection2D, meta: dict | None = None) -> dict:
    """JSON form of a 2-D view (axes, scores, formatted labels)."""
    payload = {
        "objective": view.objective,
        "axes": view.axes.tolist(),
        "scores": view.scores.tolist(),
        "all_scores": view.all_scores.tolist(),
        "top_score": float(np.max(np.abs(view.scores))),
        "axis_labels": [view.axis_label(0), view.axis_label(1)],
    }
    if meta:
        payload.update(meta)
    return payload


class ServiceAPI:
    """Maps (method, path) requests onto :class:`SessionManager` calls."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, dict]:
        """Route one request; always returns ``(status, json_payload)``."""
        body = body if body is not None else {}
        query = query if query is not None else {}
        try:
            handler = self._resolve(method.upper(), path.rstrip("/") or "/")
            if handler is None:
                return 404, {"error": f"no route {method.upper()} {path}"}
            return handler(body, query)
        except SessionNotFoundError as exc:
            return 404, {"error": str(exc)}
        except UnknownDatasetError as exc:
            return 404, {"error": str(exc)}
        except SessionExistsError as exc:
            return 409, {"error": str(exc)}
        except (
            DataShapeError,
            ConstraintError,
            InvalidSessionIdError,
            ValueError,
            TypeError,
            KeyError,
            OverflowError,
        ) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except ReproError as exc:
            # Includes StoreError: checkpoint I/O failures are server faults.
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # noqa: BLE001 — a handler bug must still
            # produce a JSON response, not a dropped connection.
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    def _resolve(
        self, method: str, path: str
    ) -> Callable[[dict, dict], tuple[int, dict]] | None:
        flat = {
            ("GET", "/health"): self._health,
            ("GET", "/datasets"): self._datasets,
            ("GET", "/stats"): self._stats,
            ("GET", "/sessions"): self._list_sessions,
            ("POST", "/sessions"): self._create_session,
        }
        if (method, path) in flat:
            return flat[(method, path)]
        match = _SESSION_PATH.match(path)
        if not match:
            return None
        sid = match.group("sid")
        rest = match.group("rest")
        per_session = {
            ("GET", ""): self._session_status,
            ("DELETE", ""): self._delete_session,
            ("GET", "/view"): self._view,
            ("POST", "/constraints"): self._constraints,
            ("POST", "/undo"): self._undo,
            ("POST", "/checkpoint"): self._checkpoint,
        }
        handler = per_session.get((method, rest))
        if handler is None:
            return None
        return lambda body, query: handler(sid, body, query)

    # ------------------------------------------------------------------
    # Collection endpoints
    # ------------------------------------------------------------------

    def _health(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"status": "ok"}

    def _datasets(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"datasets": self.manager.dataset_names()}

    def _stats(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, self.manager.stats()

    def _list_sessions(self, body: dict, query: dict) -> tuple[int, dict]:
        return 200, {"sessions": self.manager.list_sessions()}

    def _create_session(self, body: dict, query: dict) -> tuple[int, dict]:
        dataset = body.get("dataset")
        if not isinstance(dataset, str):
            raise ValueError("body must carry a 'dataset' name")
        objective = body.get("objective", "pca")
        if objective not in ("pca", "ica"):
            raise ValueError(
                f"unknown objective {objective!r}; use 'pca' or 'ica'"
            )
        seed = body.get("seed", 0)
        if seed is not None:
            seed = int(seed)
        sid = self.manager.create(
            dataset,
            objective=objective,
            standardize=bool(body.get("standardize", False)),
            seed=seed,
            session_id=body.get("session_id"),
        )
        return 201, {"session_id": sid, "dataset": dataset}

    # ------------------------------------------------------------------
    # Per-session endpoints
    # ------------------------------------------------------------------

    def _session_status(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        return 200, self.manager.session_stats(sid)

    def _delete_session(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        removed = self.manager.delete(sid)
        if not removed:
            raise SessionNotFoundError(f"no session {sid!r}")
        return 200, {"session_id": sid, "deleted": True}

    def _view(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        objective = query.get("objective")
        if objective is not None and objective not in ("pca", "ica"):
            raise ValueError(
                f"unknown objective {objective!r}; use 'pca' or 'ica'"
            )
        view, meta = self.manager.view(sid, objective=objective)
        payload = view_to_dict(view, meta)
        payload["session_id"] = sid
        return 200, payload

    def _constraints(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        kind = body.get("kind", "cluster")
        rows = body.get("rows")
        if not isinstance(rows, (list, tuple)) or not rows:
            raise ValueError("body must carry a non-empty 'rows' list")
        rows = [int(r) for r in rows]
        label = str(body.get("label", ""))
        if kind == "cluster":
            stats = self.manager.mark_cluster(sid, rows, label=label)
        elif kind in ("view", "2d"):
            stats = self.manager.mark_view_selection(sid, rows, label=label)
        else:
            raise ValueError(
                f"unknown constraint kind {kind!r}; use 'cluster' or 'view'"
            )
        return 200, stats

    def _undo(self, sid: str, body: dict, query: dict) -> tuple[int, dict]:
        label = self.manager.undo(sid)
        return 200, {"session_id": sid, "undone": label}

    def _checkpoint(
        self, sid: str, body: dict, query: dict
    ) -> tuple[int, dict]:
        self.manager.checkpoint(sid)
        return 200, {"session_id": sid, "checkpointed": True}
