"""repro.service — multi-tenant session serving for the SIDER loop.

Turns the single-process :class:`~repro.core.session.ExplorationSession`
library into a server: many concurrent sessions over named datasets, with
persistence, solve caching, and a stdlib-only JSON-over-HTTP API.

Layering (each stratum usable on its own):

``store``    :class:`SessionStore` checkpoint backends (memory / directory)
``cache``    :class:`SolveCache` — reuse fitted background models
``manager``  :class:`SessionManager` — locks, LRU eviction, TTL, resume
``api``      :class:`ServiceAPI` — transport-agnostic JSON routing,
             versioned under ``/v1`` (legacy unversioned aliases kept)
``server``   :class:`ReproServer` — ``ThreadingHTTPServer`` front-end
``client``   :class:`ServiceClient` — urllib-based Python client
``rpc``      length-prefixed JSON frames over Unix sockets (shard link)
``worker``   :class:`WorkerRuntime` — one shard's service stack over RPC
``router``   :class:`Router` — sticky-session front-end over a
             :class:`WorkerPool` (``repro serve --workers N``)

The ``/v1`` API speaks the unified vocabularies end-to-end: view
objectives come from :mod:`repro.projection.registry`
(``GET /v1/objectives`` lists them, including ones registered by user
code) and user knowledge travels as :mod:`repro.feedback` objects — a
mixed batch posted to ``POST /v1/sessions/{id}/feedback`` applies with at
most one background-model fit.

Quick start
-----------
>>> from repro.service import SessionManager, start_background, ServiceClient
>>> manager = SessionManager({"demo": my_data})          # doctest: +SKIP
>>> server = start_background(manager)                   # doctest: +SKIP
>>> client = ServiceClient(server.base_url)              # doctest: +SKIP
>>> sid = client.create_session("demo")                  # doctest: +SKIP
>>> client.view(sid)["axis_labels"]                      # doctest: +SKIP

Or from the command line: ``repro serve --port 8000``.
"""

from repro.service.api import API_VERSION, ServiceAPI, view_to_dict
from repro.service.cache import L2SolveCache, SolveCache, solve_key
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import (
    SessionExistsError,
    SessionManager,
    UnknownDatasetError,
)
from repro.service.router import (
    HashRing,
    InProcessWorker,
    ProcessWorker,
    Router,
    WorkerPool,
)
from repro.service.server import ReproServer, serve, start_background
from repro.service.worker import WorkerConfig, WorkerRuntime
from repro.service.store import (
    DirectoryStore,
    InvalidSessionIdError,
    MemoryStore,
    SessionNotFoundError,
    SessionStore,
    StoreError,
)

__all__ = [
    "API_VERSION",
    "DirectoryStore",
    "HashRing",
    "InProcessWorker",
    "InvalidSessionIdError",
    "L2SolveCache",
    "MemoryStore",
    "ProcessWorker",
    "ReproServer",
    "Router",
    "ServiceAPI",
    "ServiceClient",
    "ServiceClientError",
    "SessionExistsError",
    "SessionManager",
    "SessionNotFoundError",
    "SessionStore",
    "SolveCache",
    "StoreError",
    "UnknownDatasetError",
    "WorkerConfig",
    "WorkerPool",
    "WorkerRuntime",
    "serve",
    "solve_key",
    "start_background",
    "view_to_dict",
]
