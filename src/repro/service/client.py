"""Python client for the repro session service.

A thin, dependency-free wrapper over :mod:`urllib.request` that mirrors
the versioned ``/v1`` HTTP API one method per route.  Used by the tests,
the examples and the throughput benchmark; it is also the reference for
writing clients in other languages (every payload is plain JSON).

>>> client = ServiceClient("http://127.0.0.1:8000")      # doctest: +SKIP
>>> sid = client.create_session("three-d")               # doctest: +SKIP
>>> view = client.view(sid)                              # doctest: +SKIP
>>> client.apply_feedback(sid, [                         # doctest: +SKIP
...     ClusterFeedback(rows=tuple(range(50)), label="blob"),
... ])
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Sequence

from repro.errors import ReproError
from repro.feedback import (
    ClusterFeedback,
    Feedback,
    ViewSelectionFeedback,
)
from repro.obs import TRACE_HEADER, new_trace_id
from repro.resilience.retry import (
    BreakerOpen,
    CircuitBreaker,
    backoff_delay,
    breaker_for,
    classify,
)
from repro.service.api import DEADLINE_HEADER, IDEMPOTENCY_HEADER


class ServiceClientError(ReproError):
    """The server answered with an error status.

    Attributes
    ----------
    status:
        HTTP status code.
    payload:
        Decoded JSON error payload (carries an ``"error"`` message).
    connection_refused:
        True when the failure was a refused TCP connection (status 0) —
        never answered, so always safe to retry.
    retry_after:
        Server-supplied backoff hint in seconds (the ``Retry-After``
        header or the payload's ``retry_after``), or ``None``.  A 503
        carrying one is the only *answered* status the client retries.
    breaker_open:
        True when the request never touched the network because the
        client's circuit breaker was open.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        connection_refused: bool = False,
        retry_after: float | None = None,
        breaker_open: bool = False,
    ) -> None:
        self.status = status
        self.payload = payload
        self.connection_refused = bool(connection_refused)
        if retry_after is None and isinstance(payload, dict):
            raw = payload.get("retry_after")
            retry_after = float(raw) if raw is not None else None
        self.retry_after = retry_after
        self.breaker_open = bool(breaker_open)
        super().__init__(
            f"HTTP {status}: {payload.get('error', 'unknown error')}"
        )


class ServiceClient:
    """Talks to one repro service endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8000"`` (trailing slash optional).
    timeout:
        Per-request socket timeout in seconds.
    api_version:
        Route-prefix version; ``"v1"`` (default) talks to the versioned
        routes, ``None`` falls back to the legacy unversioned aliases.
    connect_retries:
        How many times a connection-refused request is retried before
        giving up.  This bridges the race between launching a server and
        its socket actually listening — load generators can start their
        workers first.
    retry_delay:
        Base backoff delay between retries, in seconds.  Actual delays
        are capped exponential with full jitter
        (``uniform(0, min(max_delay, retry_delay · 2ⁿ))``), floored at
        any server-supplied ``Retry-After``; ``0.0`` disables sleeping.
    max_retries:
        Retry bound for retryable failures other than connection-refused:
        ambiguous transport errors on idempotent requests (GET, or
        anything carrying an ``Idempotency-Key``) and 503s that name a
        ``Retry-After``.  Answered 4xx responses are never resent.
    max_delay:
        Ceiling of one backoff sleep, seconds.
    retry_budget:
        Cap on the *total* backoff sleep of one logical request.
    deadline_ms:
        When set, every request carries it as ``X-Repro-Deadline-Ms`` —
        the server aborts work that cannot finish inside the budget.
    breaker:
        A :class:`~repro.resilience.retry.CircuitBreaker` to use, or
        ``None`` for a private per-client one.  ``shared_breaker=True``
        uses the process-wide per-host breaker instead, so a fleet of
        workers shares one view of a struggling server.
        ``breaker=False`` disables the breaker entirely.

    Every request carries a fresh ``X-Repro-Trace-Id`` header; a server
    with observability enabled adopts it for the request's trace and
    echoes it back, so a client-side failure can be joined directly
    against the server's event log.  The id of the most recent request is
    kept at :attr:`last_trace_id`; :attr:`last_attempts` holds how many
    attempts the most recent logical request took, and :attr:`counters`
    accumulates ``retries`` / ``shed`` / ``breaker_open`` /
    ``deadline_exceeded`` / ``dedup`` across the client's lifetime (the
    numbers loadgen reports).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        api_version: str | None = "v1",
        connect_retries: int = 3,
        retry_delay: float = 0.1,
        max_retries: int = 2,
        max_delay: float = 2.0,
        retry_budget: float = 15.0,
        deadline_ms: float | None = None,
        breaker: CircuitBreaker | bool | None = None,
        shared_breaker: bool = False,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.prefix = f"/{api_version}" if api_version else ""
        if connect_retries < 0:
            raise ValueError(
                f"connect_retries must be non-negative, got {connect_retries}"
            )
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        self.connect_retries = int(connect_retries)
        self.retry_delay = float(retry_delay)
        self.max_retries = int(max_retries)
        self.max_delay = float(max_delay)
        self.retry_budget = float(retry_budget)
        self.deadline_ms = deadline_ms
        if breaker is False:
            self.breaker: CircuitBreaker | None = None
        elif isinstance(breaker, CircuitBreaker):
            self.breaker = breaker
        elif shared_breaker:
            self.breaker = breaker_for(self.base_url)
        else:
            self.breaker = CircuitBreaker(self.base_url)
        self.last_trace_id: str | None = None
        self.last_attempts = 0
        self.counters = {
            "retries": 0,
            "shed": 0,
            "breaker_open": 0,
            "deadline_exceeded": 0,
            "dedup": 0,
        }
        self._rng = random.Random()
        self._pending_idem_key: str | None = None

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        decode_json: bool = True,
    ):
        """One logical request: retry loop + backoff + circuit breaker.

        Retryable classes and their bounds: connection-refused
        (``connect_retries``); ambiguous transport failures when the
        replay is provably safe, and Retry-After-bearing 503s (both
        ``max_retries``).  Total sleep is capped by ``retry_budget``.
        """
        refused_retries = 0
        other_retries = 0
        slept = 0.0
        attempts = 0
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.acquire()
                except BreakerOpen as exc:
                    self.counters["breaker_open"] += 1
                    self.last_attempts = attempts
                    raise ServiceClientError(
                        0,
                        {"error": str(exc)},
                        retry_after=exc.retry_after,
                        breaker_open=True,
                    ) from exc
            attempts += 1
            try:
                result = self._request_once(
                    method, path, body, decode_json=decode_json
                )
            except ServiceClientError as exc:
                # An answered non-5xx response means the server is alive
                # and working, whatever it thought of the request.
                if self.breaker is not None:
                    if exc.status != 0 and exc.status < 500:
                        self.breaker.record_success()
                    else:
                        self.breaker.record_failure()
                kind = (
                    exc.payload.get("kind")
                    if isinstance(exc.payload, dict)
                    else None
                )
                if kind in ("overloaded", "draining"):
                    self.counters["shed"] += 1
                elif kind == "deadline_exceeded":
                    self.counters["deadline_exceeded"] += 1
                decision = classify(
                    exc, method, idempotency_key=self._pending_idem_key
                )
                if decision.kind == "connection_refused":
                    used, bound = refused_retries, self.connect_retries
                else:
                    used, bound = other_retries, self.max_retries
                if not decision.retryable or used >= bound:
                    self.last_attempts = attempts
                    raise
                delay = backoff_delay(
                    used,
                    self.retry_delay,
                    self.max_delay,
                    rng=self._rng,
                    floor=decision.retry_after or 0.0,
                )
                if slept + delay > self.retry_budget:
                    self.last_attempts = attempts
                    raise
                if decision.kind == "connection_refused":
                    refused_retries += 1
                else:
                    other_retries += 1
                self.counters["retries"] += 1
                if delay > 0:
                    time.sleep(delay)
                slept += delay
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                self.last_attempts = attempts
                return result

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        decode_json: bool = True,
    ):
        data = json.dumps(body).encode() if body is not None else None
        # A fresh id per attempt; a retried request is a new trace on the
        # server, joined client-side through `last_attempts`/counters.
        trace_id = new_trace_id()
        self.last_trace_id = trace_id
        headers = {
            "Content-Type": "application/json",
            TRACE_HEADER: trace_id,
        }
        if self.deadline_ms is not None:
            headers[DEADLINE_HEADER] = f"{self.deadline_ms:g}"
        if self._pending_idem_key is not None:
            # Stable across the attempts of one logical request — what
            # makes retrying an ambiguous feedback failure exactly-once.
            headers[IDEMPOTENCY_HEADER] = self._pending_idem_key
        request = urllib.request.Request(
            self.base_url + self.prefix + path,
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            retry_after = None
            raw_retry = exc.headers.get("Retry-After") if exc.headers else None
            if raw_retry is not None:
                try:
                    retry_after = float(raw_retry)
                except ValueError:
                    retry_after = None
            try:
                payload = json.loads(exc.read() or b"{}")
            except (json.JSONDecodeError, OSError, http.client.HTTPException):
                payload = {"error": str(exc)}
            raise ServiceClientError(
                exc.code, payload, retry_after=retry_after
            ) from exc
        except urllib.error.URLError as exc:
            refused = isinstance(exc.reason, ConnectionRefusedError)
            raise ServiceClientError(
                0,
                {"error": f"cannot reach {self.base_url}: {exc.reason}"},
                connection_refused=refused,
            ) from exc
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            # The server died mid-response (truncated read, reset socket).
            raise ServiceClientError(
                0,
                {
                    "error": (
                        f"connection to {self.base_url} failed mid-request: "
                        f"{type(exc).__name__}: {exc}"
                    )
                },
            ) from exc
        if not decode_json:
            return raw.decode("utf-8", "replace")
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            # A dying or misbehaving server can emit a non-JSON (or
            # truncated) success body; surface it as a client error rather
            # than a raw JSONDecodeError.
            raise ServiceClientError(
                status,
                {
                    "error": (
                        f"server returned invalid JSON "
                        f"({len(raw)} bytes): {exc}"
                    )
                },
            ) from exc

    # ------------------------------------------------------------------
    # Service-level endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Liveness probe."""
        return self._request("GET", "/health")

    def datasets(self) -> list[str]:
        """Dataset names sessions can be created on."""
        return self._request("GET", "/datasets")["datasets"]

    def objectives(self) -> list[dict]:
        """Registered view objectives as ``{"name", "description"}`` rows."""
        return self._request("GET", "/objectives")["objectives"]

    def server_stats(self) -> dict:
        """Manager and solve-cache statistics."""
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server's metrics registry."""
        return self._request("GET", "/metrics", decode_json=False)

    def metrics(self) -> dict:
        """Server metrics as JSON: ``{"enabled": bool, "families": {...}}``."""
        return self._request("GET", "/metrics?format=json")

    def metrics_history(self, seconds: float | None = None) -> dict:
        """Retained metrics time-series + server-side derivation.

        ``{"enabled": bool, "samples": [...], "derived": {...}}`` — see
        ``GET /v1/metrics/history``.  ``seconds`` trims the window.
        """
        path = "/metrics/history"
        if seconds is not None:
            path += f"?seconds={seconds:g}"
        return self._request("GET", path)

    def profile_text(self) -> str:
        """Collapsed-stack profile of the server (flamegraph input)."""
        return self._request("GET", "/profile", decode_json=False)

    def profile(self) -> dict:
        """Profiler stats + raw stack table as JSON."""
        return self._request("GET", "/profile?format=json")

    def list_sessions(self) -> list[dict]:
        """Summaries of live and checkpointed sessions."""
        return self._request("GET", "/sessions")["sessions"]

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def create_session(
        self,
        dataset: str,
        objective: str = "pca",
        standardize: bool = False,
        seed: int | None = 0,
        session_id: str | None = None,
    ) -> str:
        """Create a session; returns its id."""
        body: dict = {
            "dataset": dataset,
            "objective": objective,
            "standardize": standardize,
            "seed": seed,
        }
        if session_id is not None:
            body["session_id"] = session_id
        return self._request("POST", "/sessions", body)["session_id"]

    def session(self, session_id: str) -> dict:
        """Session status; transparently resumes a checkpointed session."""
        return self._request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        """Remove a session and its checkpoint."""
        return self._request("DELETE", f"/sessions/{session_id}")

    def checkpoint(self, session_id: str) -> dict:
        """Persist the session's knowledge state on the server."""
        return self._request("POST", f"/sessions/{session_id}/checkpoint")

    # ------------------------------------------------------------------
    # The interactive loop
    # ------------------------------------------------------------------

    def view(
        self,
        session_id: str,
        objective: str | None = None,
        detail: bool = False,
    ) -> dict:
        """Current most-informative 2-D view (axes, scores, labels).

        ``detail=True`` asks for the exploration-policy observation
        payload: per-row ``row_surprise``, the data ``projected`` onto
        the view axes, and ``knowledge_nats``.
        """
        path = f"/sessions/{session_id}/view"
        query = []
        if objective is not None:
            query.append(f"objective={objective}")
        if detail:
            query.append("detail=1")
        if query:
            path += "?" + "&".join(query)
        return self._request("GET", path)

    def apply_feedback(
        self,
        session_id: str,
        batch: Sequence[Feedback | dict],
        idempotency_key: str | None = None,
    ) -> dict:
        """Post a batch of feedback objects (applied with one refit).

        Items may be :mod:`repro.feedback` objects or their ``to_dict``
        forms; all four kinds (``cluster``, ``view``, ``margins``,
        ``covariance``) can be mixed in one batch.  Returns the session
        stats with the applied labels under ``"applied"``.

        Each logical call carries one ``Idempotency-Key`` (minted here
        unless given) held stable across retries, so resending after an
        ambiguous failure — timeout, torn response, dead server — can
        never double-apply the batch: a replay the server has already
        committed answers with the cached stats and ``"duplicate": True``
        (counted under ``counters["dedup"]``).
        """
        items = [
            item.to_dict() if isinstance(item, Feedback) else dict(item)
            for item in batch
        ]
        self._pending_idem_key = idempotency_key or uuid.uuid4().hex
        try:
            stats = self._request(
                "POST", f"/sessions/{session_id}/feedback", {"feedback": items}
            )
        finally:
            self._pending_idem_key = None
        if isinstance(stats, dict) and stats.get("duplicate"):
            self.counters["dedup"] += 1
        return stats

    def _single_feedback(self, session_id: str, feedback: Feedback) -> dict:
        """One feedback item, routed per API version.

        In legacy mode (``api_version=None``) this posts the pre-``/v1``
        ``/constraints`` body shape, so the client stays compatible with
        servers that predate the batch endpoint.
        """
        if self.prefix:
            return self.apply_feedback(session_id, [feedback])
        return self._request(
            "POST", f"/sessions/{session_id}/constraints", feedback.to_dict()
        )

    def mark_cluster(
        self, session_id: str, rows: Sequence[int], label: str = ""
    ) -> dict:
        """Post "these points form a cluster" feedback (one-item batch)."""
        return self._single_feedback(
            session_id, ClusterFeedback(rows=rows, label=label)
        )

    def mark_view_selection(
        self, session_id: str, rows: Sequence[int], label: str = ""
    ) -> dict:
        """Post feedback along the session's current view axes."""
        return self._single_feedback(
            session_id, ViewSelectionFeedback(rows=rows, label=label)
        )

    def undo(self, session_id: str) -> str | None:
        """Retract the most recent feedback action; returns its label."""
        return self._request("POST", f"/sessions/{session_id}/undo")["undone"]
