"""Front-end router of the sharded service: sticky sessions over workers.

``repro serve --workers N`` runs one HTTP front-end (this module) and N
worker processes (:mod:`repro.service.worker`).  The router exposes the
same ``dispatch(method, path, ...)`` surface as
:class:`~repro.service.api.ServiceAPI`, so the stdlib HTTP server in
:mod:`repro.service.server` drives either interchangeably; below
``dispatch`` it does four things:

* **admission + drain** at the door (PR 9's controller), so an
  overloaded or draining shard fleet sheds before any RPC hop;
* **sticky session→worker affinity** — a consistent-hash ring
  (:class:`HashRing`, MD5 over ``sid`` with virtual nodes) pins each
  session to one worker, which is what keeps a session's in-memory state
  (and its per-session lock) in exactly one process;
* **rebalance + migration on worker death** — a dead worker leaves the
  ring; its sessions hash onto survivors, which recover them from the
  shared durable store (checkpoint + WAL-tail replay, PR 7).  A
  replacement worker is respawned in the background and takes the slot
  back.  Before any session is routed to a *different* worker than the
  one that served it last, the previous owner is told to ``release`` the
  session — dropping a stale in-memory copy that could otherwise
  checkpoint old state over the new owner's progress.  Rebalancing is
  only enabled over a shared store; without one, a dead worker's
  sessions are simply gone (as they would be in-process) and requests
  wait for the respawned replacement.
* **telemetry merge** — ``GET /v1/metrics`` pulls each worker's
  ``MetricsRegistry.to_snapshot(source="worker-i")`` and folds them with
  the commutative :meth:`MetricsRegistry.merge` (PR 8), so one scrape
  sees the whole fleet; ``GET /v1/workers`` exposes the per-worker
  breakdown the merged totals must sum to.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
import uuid

from repro import obs
from repro.resilience.admission import (
    AdmissionController,
    DrainingError,
    OverloadedError,
)
from repro.resilience.drain import DEFAULT_DRAIN_BUDGET
from repro.service.api import (
    _EXEMPT_PATHS,
    _SESSION_PATH,
    ServiceAPI,
    TextResponse,
)
from repro.service.rpc import RpcClient, RpcConnectionClosed, RpcError
from repro.service.worker import WorkerConfig, worker_main

__all__ = [
    "HashRing",
    "InProcessWorker",
    "ProcessWorker",
    "Router",
    "WorkerDiedError",
    "WorkerPool",
]

#: Virtual nodes per worker on the ring: enough that removing one worker
#: spreads its sessions roughly evenly over the survivors.
VNODES = 64


class WorkerDiedError(Exception):
    """An RPC could not be completed because the worker process is gone."""


class HashRing:
    """Consistent hashing of session ids onto worker ids.

    Deterministic (MD5, no process salt) so every front-end restart and
    every test computes the same assignment, and *consistent*: removing
    a worker only moves the sessions that hashed to it.
    """

    def __init__(self, worker_ids=(), vnodes: int = VNODES) -> None:
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, int]] = []  # (hash, worker_id) sorted
        self._workers: set[int] = set()
        for wid in worker_ids:
            self.add(wid)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.md5(text.encode()).digest()[:8], "big"
        )

    def add(self, worker_id: int) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for v in range(self.vnodes):
            self._points.append((self._hash(f"{worker_id}#{v}"), worker_id))
        self._points.sort()

    def remove(self, worker_id: int) -> None:
        if worker_id not in self._workers:
            return
        self._workers.discard(worker_id)
        self._points = [p for p in self._points if p[1] != worker_id]

    def workers(self) -> set[int]:
        return set(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def lookup(self, key: str) -> int:
        """The worker id owning ``key``; raises LookupError on an empty ring."""
        if not self._points:
            raise LookupError("no live workers on the ring")
        h = self._hash(key)
        points = self._points
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        return points[lo % len(points)][1]


class _BaseWorker:
    """Shared RPC plumbing: a pool of connections to one worker socket."""

    def __init__(self, worker_id: int, socket_path: str) -> None:
        self.worker_id = worker_id
        self.socket_path = socket_path
        self._clients: list[RpcClient] = []
        self._clients_lock = threading.Lock()
        self.calls = 0
        self.failures = 0

    def alive(self) -> bool:  # pragma: no cover — overridden
        raise NotImplementedError

    def _checkout_client(self) -> RpcClient:
        with self._clients_lock:
            if self._clients:
                return self._clients.pop()
        return RpcClient(self.socket_path, timeout=300.0)

    def call(self, payload: dict, timeout: float | None = None) -> dict:
        """One RPC round-trip; raises :class:`WorkerDiedError` on failure."""
        try:
            client = self._checkout_client()
        except RpcConnectionClosed as exc:
            self.failures += 1
            raise WorkerDiedError(str(exc)) from exc
        try:
            reply = client.call(payload, timeout=timeout)
        except (RpcConnectionClosed, RpcError, OSError) as exc:
            self.failures += 1
            client.close()
            raise WorkerDiedError(
                f"worker {self.worker_id}: {exc}"
            ) from exc
        with self._clients_lock:
            self._clients.append(client)
        self.calls += 1
        return reply

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Poll the socket until the worker answers ``ping``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                return False
            try:
                if self.call({"op": "ping"}, timeout=5.0).get("ok"):
                    return True
            except WorkerDiedError:
                time.sleep(0.05)
        return False

    def close_clients(self) -> None:
        with self._clients_lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()


class ProcessWorker(_BaseWorker):
    """A worker in its own OS process, started with ``spawn``.

    ``spawn`` (not ``fork``): the child is a fresh interpreter with no
    inherited SQLite handles, locks, or threads mid-state — the entire
    class of fork-corruption bugs is excluded by construction.
    """

    def __init__(self, config: WorkerConfig, start_method: str = "spawn") -> None:
        super().__init__(config.worker_id, config.socket_path)
        import multiprocessing

        self.config = config
        ctx = multiprocessing.get_context(start_method)
        self.process = ctx.Process(
            target=worker_main,
            args=(config,),
            name=f"repro-worker-{config.worker_id}",
            daemon=True,
        )
        self.process.start()

    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def terminate(self, join_timeout: float = 5.0) -> None:
        self.close_clients()
        if self.process.is_alive():
            try:
                self.call({"op": "shutdown"}, timeout=join_timeout)
            except WorkerDiedError:
                pass
            self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover — last resort
            self.process.kill()
            self.process.join(timeout=2.0)

    def kill(self) -> None:
        """SIGKILL, no goodbye — the chaos/migration tests' crash lever."""
        self.close_clients()
        self.process.kill()
        self.process.join(timeout=5.0)


class InProcessWorker(_BaseWorker):
    """A worker served from a thread in this process (tests, notebooks).

    Same socket, frames, and ops as :class:`ProcessWorker` — only the
    process boundary is missing, which keeps the router's full code path
    exercised at thread speed.
    """

    def __init__(self, api, manager, worker_id: int, socket_dir: str) -> None:
        from repro.service.worker import WorkerRuntime

        path = os.path.join(socket_dir, f"worker-{worker_id}.sock")
        super().__init__(worker_id, path)
        self.runtime = WorkerRuntime(api, manager, worker_id=worker_id)
        self.runtime.serve_background(path)
        self._alive = True

    def alive(self) -> bool:
        return self._alive and not self.runtime.stop_event.is_set()

    @property
    def pid(self) -> int:
        return os.getpid()

    def terminate(self, join_timeout: float = 5.0) -> None:
        self.close_clients()
        self.runtime.close()
        self._alive = False

    def kill(self) -> None:
        self.terminate()


class WorkerPool:
    """N workers plus respawn-on-death bookkeeping.

    Construct with a ``factory(worker_id) -> worker`` (the CLI passes a
    :class:`ProcessWorker` factory; tests pass :class:`InProcessWorker`).
    """

    def __init__(
        self,
        size: int,
        factory,
        respawn: bool = True,
        ready_timeout: float = 60.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.factory = factory
        self.respawn = respawn
        self.ready_timeout = float(ready_timeout)
        self._lock = threading.Lock()
        self._workers: dict[int, object] = {}
        self.respawns = 0
        for wid in range(size):
            self._workers[wid] = factory(wid)
        for worker in list(self._workers.values()):
            if not worker.wait_ready(timeout=self.ready_timeout):
                self.close()
                raise WorkerDiedError(
                    f"worker {worker.worker_id} never became ready"
                )

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._workers)

    def worker(self, worker_id: int):
        with self._lock:
            return self._workers.get(worker_id)

    def workers(self) -> list:
        with self._lock:
            return [self._workers[k] for k in sorted(self._workers)]

    def live_ids(self) -> list[int]:
        with self._lock:
            items = list(self._workers.items())
        return [wid for wid, w in items if w.alive()]

    def restart(self, worker_id: int):
        """Replace a dead worker in its slot; returns the new worker."""
        with self._lock:
            old = self._workers.get(worker_id)
        if old is not None:
            try:
                old.close_clients()
            except Exception:  # noqa: BLE001 — it's dead, best effort
                pass
        fresh = self.factory(worker_id)
        if not fresh.wait_ready(timeout=self.ready_timeout):
            fresh.terminate()
            raise WorkerDiedError(
                f"respawned worker {worker_id} never became ready"
            )
        with self._lock:
            self._workers[worker_id] = fresh
            self.respawns += 1
        return fresh

    def close(self) -> None:
        for worker in self.workers():
            try:
                worker.terminate()
            except Exception:  # noqa: BLE001 — shutdown must not raise
                pass


class Router:
    """Dispatch-compatible front-end over a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The workers.
    shared_store:
        True when every worker reads the same durable store — the
        precondition for rebalancing a dead worker's sessions onto
        survivors (they recover from checkpoint + WAL tail).  When
        False the ring is static: requests for a dead worker's slot
        wait for its respawned replacement.
    admission:
        Front-door admission controller (shedding + drain).
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        shared_store: bool = False,
        admission: AdmissionController | None = None,
        drain_budget: float = DEFAULT_DRAIN_BUDGET,
        dataset_names: list[str] | None = None,
    ) -> None:
        self.pool = pool
        self.shared_store = shared_store
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.drain_budget = float(drain_budget)
        self.shutdown_hook = None
        self.last_drain: dict | None = None
        self._ring = HashRing(worker_ids=range(pool.size))
        self._ring_lock = threading.Lock()
        # sid -> worker id that last served it; consulted to issue
        # `release` to the previous owner when ownership moves.
        self._owners: dict[str, int] = {}
        self._owners_lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        self._dataset_names = dataset_names
        self.reroutes = 0
        self.releases = 0
        self.rpc_errors = 0

    # ------------------------------------------------------------------
    # Dispatch (same contract as ServiceAPI.dispatch)
    # ------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        trace_id: str | None = None,
        deadline_ms: float | None = None,
        idempotency_key: str | None = None,
    ) -> tuple[int, dict]:
        body = body if body is not None else {}
        query = query if query is not None else {}
        method = method.upper()
        normalized, _versioned = ServiceAPI._strip_version(
            path.rstrip("/") or "/"
        )
        handler = self._local_routes().get((method, normalized))
        if handler is not None:
            try:
                return handler(body, query)
            except (ValueError, TypeError, KeyError) as exc:
                return 400, {"error": f"{type(exc).__name__}: {exc}"}
            except Exception as exc:  # noqa: BLE001 — never drop a reply
                return 500, {
                    "error": f"internal error: {type(exc).__name__}: {exc}"
                }
        exempt = normalized in _EXEMPT_PATHS
        try:
            with self.admission.admit(exempt=exempt):
                return self._forward(
                    method,
                    path,
                    normalized,
                    body,
                    query,
                    trace_id=trace_id,
                    deadline_ms=deadline_ms,
                    idempotency_key=idempotency_key,
                )
        except OverloadedError as exc:
            obs.shed("overloaded")
            return 503, {
                "error": str(exc),
                "kind": "overloaded",
                "retry_after": exc.retry_after,
            }
        except DrainingError as exc:
            obs.shed("draining")
            return 503, {
                "error": str(exc),
                "kind": "draining",
                "retry_after": exc.retry_after,
            }

    # ------------------------------------------------------------------
    # Forwarding and stickiness
    # ------------------------------------------------------------------

    def _forward(
        self,
        method: str,
        path: str,
        normalized: str,
        body: dict,
        query: dict,
        trace_id: str | None,
        deadline_ms: float | None,
        idempotency_key: str | None,
    ) -> tuple[int, dict]:
        match = _SESSION_PATH.match(normalized)
        sid: str | None = None
        if match:
            sid = match.group("sid")
        elif method == "POST" and normalized == "/sessions":
            # The router must know the session id before it can pick a
            # worker, so ids are minted here when the client supplied
            # none — the worker then creates the session under this id.
            body = dict(body)
            sid = body.get("session_id") or uuid.uuid4().hex[:16]
            body["session_id"] = sid
        request = {
            "op": "request",
            "method": method,
            "path": path,
            "body": body,
            "query": query,
            "trace_id": trace_id,
            "deadline_ms": deadline_ms,
            "idempotency_key": idempotency_key,
        }
        if sid is None:
            worker = self._any_live_worker()
            if worker is None:
                return 503, {
                    "error": "no live workers",
                    "kind": "no_workers",
                    "retry_after": 1.0,
                }
            try:
                return self._unwrap(worker.call(request))
            except WorkerDiedError:
                self._note_death(worker.worker_id)
                retry = self._any_live_worker()
                if retry is None:
                    return 503, {
                        "error": "no live workers",
                        "kind": "no_workers",
                        "retry_after": 1.0,
                    }
                return self._unwrap(retry.call(request))
        return self._forward_session(sid, request)

    def _forward_session(self, sid: str, request: dict) -> tuple[int, dict]:
        """Sticky-route one session request, surviving one worker death."""
        for attempt in range(2):
            worker = self._owner_worker(sid)
            if worker is None:
                return 503, {
                    "error": f"no live worker available for session {sid!r}",
                    "kind": "no_workers",
                    "retry_after": 1.0,
                }
            try:
                return self._unwrap(worker.call(request))
            except WorkerDiedError:
                self.rpc_errors += 1
                self._note_death(worker.worker_id)
                if attempt == 0:
                    # Second pass re-resolves ownership: either the ring
                    # rebalanced the session onto a survivor (shared
                    # store) or the slot's replacement is awaited.  The
                    # mutation paths stay exactly-once across this retry
                    # because the Idempotency-Key rides in `request`.
                    continue
        return 503, {
            "error": f"workers for session {sid!r} keep dying",
            "kind": "no_workers",
            "retry_after": 1.0,
        }

    def _owner_worker(self, sid: str):
        """Resolve the sticky owner, issuing release on ownership moves."""
        with self._ring_lock:
            try:
                target = self._ring.lookup(sid)
            except LookupError:
                return None
        worker = self.pool.worker(target)
        if worker is None or not worker.alive():
            self._note_death(target)
            with self._ring_lock:
                try:
                    target = self._ring.lookup(sid)
                except LookupError:
                    return None
            worker = self.pool.worker(target)
            if worker is None or not worker.alive():
                return None
        with self._owners_lock:
            previous = self._owners.get(sid)
            self._owners[sid] = target
        if previous is not None and previous != target:
            self.reroutes += 1
            self._release_previous(sid, previous)
        return worker

    def _release_previous(self, sid: str, previous: int) -> None:
        """Tell the old owner to drop its in-memory copy of the session."""
        worker = self.pool.worker(previous)
        if worker is None or not worker.alive():
            return  # died — nothing in memory to go stale
        try:
            worker.call({"op": "release", "session_id": sid}, timeout=10.0)
            self.releases += 1
        except WorkerDiedError:
            self._note_death(previous)

    def _any_live_worker(self):
        for worker in self.pool.workers():
            if worker.alive():
                return worker
        return None

    def _note_death(self, worker_id: int) -> None:
        """Worker died: rebalance (shared store) and respawn its slot."""
        worker = self.pool.worker(worker_id)
        if worker is not None and worker.alive():
            return  # false alarm (e.g. one torn connection)
        if self.shared_store:
            # Survivors can recover its sessions from the store — take
            # the slot off the ring so lookups rebalance immediately.
            with self._ring_lock:
                self._ring.remove(worker_id)
        if self.pool.respawn:
            threading.Thread(
                target=self._respawn,
                args=(worker_id,),
                name=f"repro-respawn-{worker_id}",
                daemon=True,
            ).start()

    def _respawn(self, worker_id: int) -> None:
        with self._respawn_lock:
            worker = self.pool.worker(worker_id)
            if worker is not None and worker.alive():
                return  # already replaced by a concurrent pass
            try:
                self.pool.restart(worker_id)
            except Exception:  # noqa: BLE001 — leave the slot dead;
                return  # the next death note retries
        with self._ring_lock:
            self._ring.add(worker_id)
            # Sessions that hashed away during the outage now hash back;
            # _owner_worker will release them from their interim owners.

    @staticmethod
    def _unwrap(reply: dict) -> tuple[int, dict]:
        if not reply.get("ok", False):
            return 500, {
                "error": reply.get("error", "worker error"),
                "kind": "worker_error",
            }
        if "text" in reply:
            text = TextResponse(reply["text"])
            # Mirror the worker's content type (plain vs Prometheus);
            # TextResponse is a plain str subclass, so an instance
            # attribute shadows the class default cleanly.
            content_type = reply.get("content_type")
            if content_type:
                text.content_type = content_type
            return int(reply["status"]), text
        return int(reply["status"]), reply.get("payload", {})

    # ------------------------------------------------------------------
    # Front-end routes
    # ------------------------------------------------------------------

    def _local_routes(self):
        return {
            ("GET", "/health"): self._health,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/stats"): self._stats,
            ("GET", "/workers"): self._workers_route,
            ("POST", "/admin/drain"): self._admin_drain,
            ("GET", "/sessions"): self._list_sessions,
        }

    def _health(self, body: dict, query: dict) -> tuple[int, dict]:
        live = self.pool.live_ids()
        payload = {
            "status": "ok" if live else "degraded",
            "workers": {"alive": len(live), "total": self.pool.size},
        }
        return 200, payload

    def _metrics(self, body: dict, query: dict) -> tuple[int, dict]:
        """Fleet-wide scrape: merge every worker's snapshot (PR 8)."""
        from repro.obs.metrics import MetricsRegistry

        as_json = str(query.get("format", "")).lower() == "json"
        merged = MetricsRegistry()
        enabled = False
        for worker in self.pool.workers():
            if not worker.alive():
                continue
            try:
                reply = worker.call({"op": "metrics"}, timeout=30.0)
            except WorkerDiedError:
                self._note_death(worker.worker_id)
                continue
            snapshot = reply.get("snapshot")
            if snapshot:
                enabled = True
                merged.merge(snapshot, source=f"worker-{worker.worker_id}")
        state = obs.active()
        if state is not None:
            enabled = True
            merged.merge(state.metrics.to_snapshot(), source="router")
        if not enabled:
            if as_json:
                return 200, {"enabled": False, "families": {}}
            return 200, TextResponse("# repro observability disabled\n")
        if as_json:
            return 200, {"enabled": True, "families": merged.render_json()}
        return 200, TextResponse(merged.render_prometheus())

    def _worker_stats(self) -> list[dict]:
        stats = []
        for worker in self.pool.workers():
            if not worker.alive():
                stats.append(
                    {"worker_id": worker.worker_id, "alive": False}
                )
                continue
            try:
                reply = worker.call({"op": "stats"}, timeout=30.0)
                entry = reply.get("stats", {})
                entry["alive"] = True
                entry["rpc_calls"] = worker.calls
                entry["rpc_failures"] = worker.failures
                stats.append(entry)
            except WorkerDiedError:
                self._note_death(worker.worker_id)
                stats.append(
                    {"worker_id": worker.worker_id, "alive": False}
                )
        return stats

    #: Manager counters that sum meaningfully across workers.
    _SUMMED = (
        "sessions_in_memory",
        "created",
        "resumed",
        "evicted",
        "expired",
        "checkpoints",
        "wal_appends",
        "wal_rollbacks",
        "compactions",
        "replayed_batches",
        "deduplicated",
        "released",
    )

    def _stats(self, body: dict, query: dict) -> tuple[int, dict]:
        workers = self._worker_stats()
        payload: dict = {
            "sharded": True,
            "router": {
                "workers": self.pool.size,
                "workers_alive": len(self.pool.live_ids()),
                "respawns": self.pool.respawns,
                "reroutes": self.reroutes,
                "releases": self.releases,
                "rpc_errors": self.rpc_errors,
                "shared_store": self.shared_store,
                "admission": self.admission.stats(),
                "sticky_sessions": len(self._owners),
            },
            "workers": workers,
        }
        for key in self._SUMMED:
            payload[key] = sum(
                w.get(key, 0) for w in workers if w.get("alive")
            )
        cache_totals: dict = {}
        for w in workers:
            cache = w.get("cache")
            if not cache:
                continue
            for field in ("entries", "hits", "misses", "stores", "evictions"):
                cache_totals[field] = (
                    cache_totals.get(field, 0) + cache.get(field, 0)
                )
            if "l2" in cache and "l2" not in cache_totals:
                cache_totals["l2"] = cache["l2"]
        if cache_totals:
            lookups = cache_totals.get("hits", 0) + cache_totals.get(
                "misses", 0
            )
            cache_totals["hit_rate"] = (
                cache_totals.get("hits", 0) / lookups if lookups else 0.0
            )
            payload["cache"] = cache_totals
        else:
            payload["cache"] = None
        for w in workers:
            if w.get("alive") and "datasets" in w:
                payload["datasets"] = w["datasets"]
                break
        else:
            payload["datasets"] = self._dataset_names or []
        return 200, payload

    def _workers_route(self, body: dict, query: dict) -> tuple[int, dict]:
        """Per-worker breakdown (liveness, sessions, request counters)."""
        workers = []
        for worker in self.pool.workers():
            entry: dict = {
                "worker_id": worker.worker_id,
                "alive": worker.alive(),
                "pid": getattr(worker, "pid", None),
                "socket": worker.socket_path,
                "rpc_calls": worker.calls,
                "rpc_failures": worker.failures,
            }
            if worker.alive():
                try:
                    pong = worker.call({"op": "ping"}, timeout=10.0)
                    entry["sessions"] = pong.get("sessions")
                    reply = worker.call({"op": "metrics"}, timeout=30.0)
                    snapshot = reply.get("snapshot")
                    if snapshot:
                        # Scalar totals per worker, so an external check
                        # can assert the merged /metrics scrape equals
                        # the per-worker sums without re-merging.
                        entry["requests_total"] = _counter_total(
                            snapshot, "repro_requests_total"
                        )
                except WorkerDiedError:
                    entry["alive"] = False
                    self._note_death(worker.worker_id)
            workers.append(entry)
        return 200, {"workers": workers}

    def _list_sessions(self, body: dict, query: dict) -> tuple[int, dict]:
        """Fan out and merge: live entries win over stored duplicates."""
        merged: dict[str, dict] = {}
        for worker in self.pool.workers():
            if not worker.alive():
                continue
            try:
                status, payload = self._unwrap(
                    worker.call(
                        {
                            "op": "request",
                            "method": "GET",
                            "path": "/v1/sessions",
                            "body": {},
                            "query": {},
                        },
                        timeout=60.0,
                    )
                )
            except WorkerDiedError:
                self._note_death(worker.worker_id)
                continue
            if status != 200:
                continue
            for summary in payload.get("sessions", []):
                sid = summary.get("session_id")
                if sid is None:
                    continue
                current = merged.get(sid)
                if current is None or (
                    summary.get("in_memory") and not current.get("in_memory")
                ):
                    merged[sid] = summary
        return 200, {"sessions": [merged[sid] for sid in sorted(merged)]}

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------

    def _admin_drain(self, body: dict, query: dict) -> tuple[int, dict]:
        budget = float(body.get("budget_seconds", self.drain_budget))
        if budget < 0:
            raise ValueError(f"budget_seconds must be >= 0, got {budget}")
        initiated = self.admission.begin_drain()
        if initiated:
            threading.Thread(
                target=self._run_drain_background,
                args=(budget,),
                name="repro-router-drain",
                daemon=True,
            ).start()
        return 202, {
            "draining": True,
            "initiated": initiated,
            "budget_seconds": budget,
        }

    def drain(self, budget_seconds: float | None = None) -> dict:
        """Drain the fleet synchronously; returns a report dict.

        Stops admitting, waits for in-flight requests, then asks every
        worker to checkpoint its sessions (``drain`` op).  Safe to call
        repeatedly; used by the SIGTERM path of ``repro serve``.
        """
        budget = (
            float(budget_seconds)
            if budget_seconds is not None
            else self.drain_budget
        )
        started = time.monotonic()
        self.admission.begin_drain()
        drained = self.admission.wait_idle(budget)
        checkpointed = 0
        worker_reports = []
        for worker in self.pool.workers():
            if not worker.alive():
                worker_reports.append(
                    {"worker_id": worker.worker_id, "alive": False}
                )
                continue
            try:
                reply = worker.call({"op": "drain"}, timeout=max(budget, 30.0))
                count = int(reply.get("checkpointed", 0))
                checkpointed += count
                worker_reports.append(
                    {"worker_id": worker.worker_id, "checkpointed": count}
                )
            except WorkerDiedError:
                worker_reports.append(
                    {"worker_id": worker.worker_id, "alive": False}
                )
        report = {
            "drained_in_budget": bool(drained),
            "abandoned_inflight": self.admission.stats().get("inflight", 0),
            "checkpointed": checkpointed,
            "workers": worker_reports,
            "elapsed_seconds": time.monotonic() - started,
        }
        self.last_drain = report
        return report

    def _run_drain_background(self, budget: float) -> None:
        report = self.drain(budget)
        if self.shutdown_hook is not None:
            try:
                self.shutdown_hook()
            except Exception:  # noqa: BLE001 — drain report still stands
                pass
        state = obs.active()
        if state is not None and state.events is not None:
            state.events.emit({"event": "drain", **report})

    def close(self) -> None:
        """Terminate every worker and forget the assignments."""
        self.pool.respawn = False
        self.pool.close()
        with self._owners_lock:
            self._owners.clear()


def _counter_total(snapshot: dict, family: str) -> float:
    """Sum one counter family's samples in a ``to_snapshot`` payload."""
    spec = snapshot.get("families", {}).get(family)
    if not spec:
        return 0.0
    return float(sum(s.get("value", 0.0) for s in spec.get("samples", ())))


def default_socket_dir() -> str:
    """A fresh runtime directory for worker sockets (caller cleans up)."""
    return tempfile.mkdtemp(prefix="repro-shard-")
