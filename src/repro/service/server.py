"""Stdlib HTTP front-end for the session service.

A :class:`ReproServer` is a ``ThreadingHTTPServer`` whose handler decodes
JSON requests and delegates to a :class:`~repro.service.api.ServiceAPI`.
One thread per connection matches the manager's concurrency model: the
manager serialises per session and parallelises across sessions.

For embedding (tests, notebooks, benchmarks) use :func:`start_background`,
which binds an ephemeral port and serves from a daemon thread::

    server = start_background(manager)
    client = ServiceClient(server.base_url)
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.service.api import ServiceAPI
from repro.service.manager import SessionManager


class _RequestHandler(BaseHTTPRequestHandler):
    """Decode one JSON request, dispatch it, encode the JSON response."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    def _handle(self, method: str) -> None:
        parsed = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                self._respond(400, {"error": f"request body is not JSON: {exc}"})
                return
            if not isinstance(body, dict):
                self._respond(400, {"error": "request body must be a JSON object"})
                return
        status, payload = self.server.api.dispatch(  # type: ignore[attr-defined]
            method, parsed.path, body=body, query=query
        )
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    # PUT/PATCH have no routes; handling them lets the API layer answer a
    # proper 405 (with the allowed methods) instead of the socket-level 501.
    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_PATCH(self) -> None:  # noqa: N802
        self._handle("PATCH")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServiceAPI`.

    Parameters
    ----------
    api:
        The dispatch layer (or pass a :class:`SessionManager` and one is
        wrapped for you).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port.
    quiet:
        Suppress per-request access logging (default True; the CLI turns
        logging on).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        api: ServiceAPI | SessionManager,
        host: str = "127.0.0.1",
        port: int = 8000,
        quiet: bool = True,
    ) -> None:
        if isinstance(api, SessionManager):
            api = ServiceAPI(api)
        self.api = api
        self.quiet = quiet
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _RequestHandler)

    @property
    def base_url(self) -> str:
        """http:// URL clients should talk to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "ReproServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def start_background(
    api: ServiceAPI | SessionManager, host: str = "127.0.0.1", port: int = 0
) -> ReproServer:
    """Bind an ephemeral port and serve in a daemon thread."""
    return ReproServer(api, host=host, port=port).start_background()


def serve(
    api: ServiceAPI | SessionManager | ReproServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    quiet: bool = False,
    on_shutdown: Callable[[], None] | None = None,
) -> None:
    """Serve on the calling thread until interrupted (the CLI entry path).

    Accepts a pre-built :class:`ReproServer` (so callers can announce the
    bound address first) or anything its constructor takes.  An optional
    ``on_shutdown`` hook runs after the serve loop ends, before the socket
    closes — the place to checkpoint sessions.
    """
    if isinstance(api, ReproServer):
        server = api
    else:
        server = ReproServer(api, host=host, port=port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if on_shutdown is not None:
            on_shutdown()
        server.server_close()
