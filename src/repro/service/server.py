"""Stdlib HTTP front-end for the session service.

A :class:`ReproServer` is a ``ThreadingHTTPServer`` whose handler decodes
JSON requests and delegates to a :class:`~repro.service.api.ServiceAPI`.
One thread per connection matches the manager's concurrency model: the
manager serialises per session and parallelises across sessions.

For embedding (tests, notebooks, benchmarks) use :func:`start_background`,
which binds an ephemeral port and serves from a daemon thread::

    server = start_background(manager)
    client = ServiceClient(server.base_url)
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.resilience import chaos
from repro.service.api import (
    DEADLINE_HEADER,
    IDEMPOTENCY_HEADER,
    ServiceAPI,
)
from repro.service.manager import SessionManager

#: Default request-body ceiling.  Large enough for any realistic feedback
#: batch (a 100k-row cluster marking is ~1 MB of JSON), small enough that
#: one bad client cannot make a handler thread buffer gigabytes.
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024


class _RequestHandler(BaseHTTPRequestHandler):
    """Decode one JSON request, dispatch it, encode the JSON response."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    #: Trace id of the request currently being handled (echoed back in the
    #: response headers); None while observability/tracing is off.
    _trace_id: str | None = None

    def _handle(self, method: str) -> None:
        state = obs.active()
        started = time.perf_counter()
        self._trace_id = (
            obs.accept_trace_id(self.headers.get(obs.TRACE_HEADER))
            if state is not None and state.tracing
            else None
        )
        parsed = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        max_bytes = self.server.max_body_bytes  # type: ignore[attr-defined]
        if max_bytes is not None and length > max_bytes:
            # Reject without reading; the unread body would poison the
            # keep-alive stream, so this connection closes after the reply.
            self.close_connection = True
            self._reject(
                state,
                started,
                method,
                parsed.path,
                413,
                f"request body of {length} bytes exceeds "
                f"the {max_bytes}-byte limit",
                "oversized_body",
            )
            return
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                self._reject(
                    state,
                    started,
                    method,
                    parsed.path,
                    400,
                    f"request body is not JSON: {exc}",
                    "malformed_body",
                )
                return
            if not isinstance(body, dict):
                self._reject(
                    state,
                    started,
                    method,
                    parsed.path,
                    400,
                    "request body must be a JSON object",
                    "malformed_body",
                )
                return
        deadline_ms: float | None = None
        deadline_raw = self.headers.get(DEADLINE_HEADER)
        if deadline_raw is not None:
            try:
                deadline_ms = float(deadline_raw)
            except ValueError:
                self._reject(
                    state,
                    started,
                    method,
                    parsed.path,
                    400,
                    f"invalid {DEADLINE_HEADER} header: {deadline_raw!r}",
                    "bad_request",
                )
                return
        status, payload = self.server.api.dispatch(  # type: ignore[attr-defined]
            method, parsed.path, body=body, query=query,
            trace_id=self._trace_id,
            deadline_ms=deadline_ms,
            idempotency_key=self.headers.get(IDEMPOTENCY_HEADER),
        )
        self._respond(status, payload)

    def _reject(
        self,
        state,
        started: float,
        method: str,
        path: str,
        status: int,
        message: str,
        kind: str,
    ) -> None:
        """Refuse a request before dispatch; still emits the typed error
        event (these rejections never reach the API layer's envelope).

        The event is recorded before the response goes out, so a client
        that has seen the error can rely on the event being in the log.
        """
        if state is not None:
            state.observe_request(
                method,
                path,
                status,
                time.perf_counter() - started,
                trace_id=self._trace_id,
                error=message,
                error_kind=kind,
            )
        self._respond(status, {"error": message})

    def _respond(self, status: int, payload) -> None:
        content_type = getattr(payload, "content_type", None)
        if content_type is not None:  # TextResponse (Prometheus metrics)
            encoded = str(payload).encode()
        else:
            content_type = "application/json"
            encoded = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        if isinstance(payload, dict) and "retry_after" in payload:
            # Shed responses (503 overloaded / draining) name a comeback
            # time; well-behaved clients back off at least this long.
            self.send_header("Retry-After", f"{payload['retry_after']:g}")
        if self._trace_id is not None:
            self.send_header(obs.TRACE_HEADER, self._trace_id)
        self.end_headers()
        torn = chaos.hit("server.respond")
        if torn is not None and torn.kind == "torn" and len(encoded) > 1:
            # Injected torn response: write a prefix of the body and slam
            # the connection — the client sees headers but a short read.
            self.wfile.write(encoded[: len(encoded) // 2])
            self.wfile.flush()
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    # PUT/PATCH have no routes; handling them lets the API layer answer a
    # proper 405 (with the allowed methods) instead of the socket-level 501.
    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_PATCH(self) -> None:  # noqa: N802
        self._handle("PATCH")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServiceAPI`.

    Parameters
    ----------
    api:
        The dispatch layer (or pass a :class:`SessionManager` and one is
        wrapped for you).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port.
    quiet:
        Suppress per-request access logging (default True; the CLI turns
        logging on).
    max_body_bytes:
        Largest request body accepted; anything longer answers ``413``
        without reading the body.  ``None`` disables the limit.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        api: ServiceAPI | SessionManager,
        host: str = "127.0.0.1",
        port: int = 8000,
        quiet: bool = True,
        max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if isinstance(api, SessionManager):
            api = ServiceAPI(api)
        # Anything with a dispatch(method, path, ...) surface serves —
        # ServiceAPI directly, or the sharded Router front-end.
        if not callable(getattr(api, "dispatch", None)):
            raise TypeError(
                "api must be a SessionManager or expose "
                f"dispatch(method, path, ...); got {type(api).__name__}"
            )
        self.api = api
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _RequestHandler)

    @property
    def base_url(self) -> str:
        """http:// URL clients should talk to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "ReproServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop serving and release the socket (idempotent).

        Raises :class:`RuntimeError` if the serve thread is still alive
        after ``join_timeout`` seconds — a hung handler is a bug worth
        hearing about, not a silent return that pretends the server
        stopped.  A structured ``shutdown_hang`` event is emitted first
        (when observability is on) and the thread reference is kept so a
        later ``stop()`` can retry the join.
        """
        self.shutdown()
        self.server_close()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            state = obs.active()
            if state is not None and state.events is not None:
                state.events.emit(
                    {
                        "event": "shutdown_hang",
                        "thread": thread.name,
                        "join_timeout_seconds": float(join_timeout),
                    }
                )
            raise RuntimeError(
                f"server thread {thread.name!r} still alive "
                f"{join_timeout:g}s after shutdown; a handler is hung"
            )
        self._thread = None


def start_background(
    api: ServiceAPI | SessionManager, host: str = "127.0.0.1", port: int = 0
) -> ReproServer:
    """Bind an ephemeral port and serve in a daemon thread."""
    return ReproServer(api, host=host, port=port).start_background()


def serve(
    api: ServiceAPI | SessionManager | ReproServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    quiet: bool = False,
    on_shutdown: Callable[[], None] | None = None,
) -> None:
    """Serve on the calling thread until interrupted (the CLI entry path).

    Accepts a pre-built :class:`ReproServer` (so callers can announce the
    bound address first) or anything its constructor takes.  An optional
    ``on_shutdown`` hook runs after the serve loop ends, before the socket
    closes — the place to checkpoint sessions.
    """
    if isinstance(api, ReproServer):
        server = api
    else:
        server = ReproServer(api, host=host, port=port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if on_shutdown is not None:
            on_shutdown()
        server.server_close()
