"""Length-prefixed JSON RPC over local sockets: router <-> worker link.

The sharded service (:mod:`repro.service.router`) keeps the HTTP
front-end in one process and runs the :class:`SessionManager` stack in a
pool of worker processes.  The hop between them is deliberately boring:
one Unix-domain socket per worker, each message a 4-byte big-endian
length prefix followed by a UTF-8 JSON document.  No pipelining, no
multiplexing — a connection carries one request at a time, and the
front-end holds a small pool of connections per worker so concurrent
HTTP handler threads do not serialise on a single socket.

Framing is symmetric (:func:`send_frame` / :func:`recv_frame`), so the
same two functions implement both ends.  A peer that disappears mid-frame
raises :class:`RpcConnectionClosed` — the router treats that as a dead
worker and re-routes; a frame that exceeds :data:`MAX_FRAME_BYTES`
raises :class:`RpcError` before any allocation, so one corrupt length
prefix cannot make a worker try to buffer gigabytes.

The server side (:class:`RpcServer`) is thread-per-connection, matching
the HTTP front-end's concurrency model: each router connection maps to
one worker thread, and the worker's :class:`SessionManager` provides the
actual per-session serialisation.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
from typing import Callable

__all__ = [
    "MAX_FRAME_BYTES",
    "RpcConnectionClosed",
    "RpcError",
    "RpcClient",
    "RpcServer",
    "recv_frame",
    "send_frame",
]

#: Largest frame either side will send or accept.  Comfortably above the
#: HTTP layer's 16 MB body ceiling plus response payloads (a detail view
#: of a 100k-row dataset is ~10 MB of JSON), far below anything a length
#: prefix corrupted by a torn write could ask for.
MAX_FRAME_BYTES = 128 * 1024 * 1024

_LEN = struct.Struct("!I")


class RpcError(Exception):
    """Protocol violation: oversized frame, non-JSON payload, bad reply."""


class RpcConnectionClosed(RpcError):
    """The peer closed the connection (cleanly or mid-frame)."""


def send_frame(sock: socket.socket, obj) -> None:
    """Serialise ``obj`` as JSON and write one length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise RpcError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise RpcConnectionClosed(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one frame; raises :class:`RpcConnectionClosed` on EOF.

    EOF *between* frames (a clean shutdown) and EOF *inside* a frame
    both raise — callers that want to treat the former as a normal close
    can catch the exception at a message boundary.
    """
    try:
        header = _recv_exact(sock, _LEN.size)
    except RpcConnectionClosed:
        raise
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RpcError(
            f"incoming frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit; stream is corrupt"
        )
    body = _recv_exact(sock, length)
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise RpcError(f"frame body is not JSON: {exc}") from exc


class RpcClient:
    """One connection to an :class:`RpcServer`; serialises its own calls.

    ``call`` is locked so a client instance can be shared, but the
    intended shape is a pool of clients per worker (see
    ``router._WorkerLink``): one outstanding request per connection.
    """

    def __init__(
        self,
        path: str,
        connect_timeout: float = 5.0,
        timeout: float | None = None,
    ) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(path)
        except OSError as exc:
            self._sock.close()
            raise RpcConnectionClosed(
                f"cannot connect to worker socket {path}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)

    def call(self, payload, timeout: float | None = None):
        """Send one request frame and block for the reply frame."""
        with self._lock:
            if timeout is not None:
                self._sock.settimeout(timeout)
            try:
                send_frame(self._sock, payload)
                return recv_frame(self._sock)
            except (OSError, RpcConnectionClosed) as exc:
                raise RpcConnectionClosed(
                    f"worker connection {self.path} failed: {exc}"
                ) from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class RpcServer:
    """Thread-per-connection frame server over a Unix-domain socket.

    Parameters
    ----------
    path:
        Socket path to bind (any stale file there is unlinked first).
    handler:
        ``handler(request) -> reply`` called for every frame; exceptions
        it raises are answered as ``{"ok": False, "error": ...}`` so a
        handler bug degrades to an error reply, not a dropped connection.
        The handler runs on the connection's thread.
    """

    def __init__(self, path: str, handler: Callable[[dict], dict]) -> None:
        self.path = path
        self.handler = handler
        self._closing = threading.Event()
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(64)
        self._accept_thread: threading.Thread | None = None

    def serve_background(self) -> "RpcServer":
        """Accept connections on a daemon thread; returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-rpc-{os.path.basename(self.path)}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                break  # socket closed by close()
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-rpc-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._closing.is_set():
                try:
                    request = recv_frame(conn)
                except RpcConnectionClosed:
                    return  # peer hung up — the normal end of a connection
                except RpcError:
                    return  # corrupt stream: drop it, peer will reconnect
                try:
                    reply = self.handler(request)
                except Exception as exc:  # noqa: BLE001 — must answer
                    reply = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                try:
                    send_frame(conn, reply)
                except (OSError, RpcError):
                    return

    def close(self) -> None:
        """Stop accepting and release the socket file (idempotent)."""
        self._closing.set()
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass
