"""Deterministic run traces: record, persist, and replay explorations.

Every engine run can be written as a JSON-lines file — one ``header``
line (policy + config, session facts, seeds), one ``round`` line per
engine round (the typed feedback applied, the knowledge reached, solver
diagnostics), and one ``summary`` line.  Because the engine is
deterministic, the trace is not a log but a *program*: replaying its
feedback sequence against a fresh session — in-process or over a live
``/v1`` service — must land on the identical ``knowledge_nats`` curve,
and :func:`replay_trace` verifies exactly that.

The subtle part of faithful replay is view-relative feedback:
:class:`~repro.feedback.ViewSelectionFeedback` resolves against the view
current at apply time, so the replay performs the same observe sequence
(same objectives, hence the same session-RNG consumption) as the
original run before each apply.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.session import ExplorationSession
from repro.errors import DataShapeError
from repro.explore.engine import (
    ExplorationResult,
    InProcessDriver,
    RemoteDriver,
    RoundRecord,
    SessionDriver,
)

#: Trace format marker; bump on breaking changes.
TRACE_VERSION = 1


@dataclass
class Trace:
    """A parsed trace file: header facts, round records, summary."""

    header: dict
    rounds: list[RoundRecord] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    def knowledge_curve(self) -> list[float]:
        """Recorded ``knowledge_nats`` curve (baseline at index 0)."""
        return [float(self.header.get("initial_knowledge_nats", 0.0))] + [
            record.knowledge_nats for record in self.rounds
        ]

    @property
    def session_info(self) -> dict:
        return dict(self.header.get("session", {}))


def trace_lines(result: ExplorationResult) -> list[dict]:
    """The JSONL payloads of one run, in file order."""
    header = {
        "type": "header",
        "version": TRACE_VERSION,
        "policy": result.policy,
        "policy_config": result.policy_config,
        "session": result.session,
        "seed": result.seed,
        "initial_knowledge_nats": result.initial_knowledge_nats,
    }
    summary = {
        "type": "summary",
        "rounds": len(result.rounds),
        "stopped_by": result.stopped_by,
        "final_knowledge_nats": result.knowledge_curve()[-1],
        "elapsed": result.elapsed,
    }
    return [header, *[record.to_dict() for record in result.rounds], summary]


def save_trace(result: ExplorationResult, path: str | Path) -> None:
    """Write one run as a JSONL trace file."""
    with Path(path).open("w", encoding="utf-8") as handle:
        for line in trace_lines(result):
            handle.write(json.dumps(line) + "\n")


def load_trace(path: str | Path) -> Trace:
    """Parse a trace file written by :func:`save_trace`.

    Raises
    ------
    DataShapeError
        On unreadable files, malformed lines, a missing/duplicate header,
        or an unsupported trace version.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise DataShapeError(f"cannot read trace file {path}: {exc}") from exc
    header: dict | None = None
    rounds: list[RoundRecord] = []
    summary: dict = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DataShapeError(
                f"trace line {lineno} is not JSON: {exc}"
            ) from exc
        kind = payload.get("type") if isinstance(payload, dict) else None
        if kind == "header":
            if header is not None:
                raise DataShapeError(f"trace line {lineno}: duplicate header")
            if payload.get("version") != TRACE_VERSION:
                raise DataShapeError(
                    f"unsupported trace version {payload.get('version')!r} "
                    f"(supported: {TRACE_VERSION})"
                )
            header = payload
        elif kind == "round":
            try:
                rounds.append(RoundRecord.from_dict(payload))
            except (KeyError, TypeError, ValueError) as exc:
                raise DataShapeError(
                    f"trace line {lineno}: malformed round: {exc}"
                ) from exc
        elif kind == "summary":
            summary = payload
        else:
            raise DataShapeError(
                f"trace line {lineno}: unknown record type {kind!r}"
            )
    if header is None:
        raise DataShapeError(f"trace file {path} has no header line")
    rounds.sort(key=lambda record: record.index)
    return Trace(header=header, rounds=rounds, summary=summary)


@dataclass
class ReplayResult:
    """Outcome of re-running a trace's feedback sequence."""

    expected_curve: list[float]
    actual_curve: list[float]
    mismatches: list[dict] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        return not self.mismatches


def replay_trace(
    trace: Trace,
    driver: SessionDriver,
    tolerance: float = 0.0,
) -> ReplayResult:
    """Re-apply a trace's feedback through a fresh session and verify it.

    The driver must wrap a *fresh* session built with the trace's session
    facts (same dataset, ``standardize`` flag and session seed) — use
    :func:`in_process_driver_for` / :func:`remote_driver_for`.  Replays
    the recorded observe/apply sequence and compares the resulting
    ``knowledge_nats`` curve (and applied labels) against the recording;
    ``tolerance`` is an absolute slack per point, 0.0 meaning bit-for-bit.
    """
    expected = trace.knowledge_curve()
    mismatches: list[dict] = []
    first_objective = trace.rounds[0].objective if trace.rounds else None
    observation, _ = driver.observe(0, first_objective)
    actual = [observation.knowledge_nats]
    for position, record in enumerate(trace.rounds):
        if record.feedback:
            applied = driver.apply(record.feedback)
            if list(applied["labels"]) != list(record.labels):
                mismatches.append(
                    {
                        "round": record.index,
                        "field": "labels",
                        "expected": list(record.labels),
                        "actual": list(applied["labels"]),
                    }
                )
        next_objective = (
            trace.rounds[position + 1].objective
            if position + 1 < len(trace.rounds)
            else None
        )
        observation, _ = driver.observe(position + 1, next_objective)
        actual.append(observation.knowledge_nats)
    for position, (want, got) in enumerate(zip(expected, actual)):
        if abs(want - got) > tolerance:
            mismatches.append(
                {
                    "round": position - 1,
                    "field": "knowledge_nats",
                    "expected": want,
                    "actual": got,
                }
            )
    if len(expected) != len(actual):
        mismatches.append(
            {
                "field": "curve_length",
                "expected": len(expected),
                "actual": len(actual),
            }
        )
    return ReplayResult(
        expected_curve=expected, actual_curve=actual, mismatches=mismatches
    )


def in_process_driver_for(trace: Trace, data) -> InProcessDriver:
    """Fresh in-process driver matching a trace's session facts.

    The caller supplies the data matrix for the trace's dataset (traces,
    like checkpoints, never embed the data itself).
    """
    info = trace.session_info
    session = ExplorationSession(
        data,
        objective=info.get("objective", "pca"),
        standardize=bool(info.get("standardize", False)),
        seed=info.get("session_seed", 0),
        warm_start=bool(info.get("warm_start", False)),
    )
    return InProcessDriver(session, info=info)


def remote_driver_for(
    trace: Trace, client, session_id: str | None = None
) -> RemoteDriver:
    """Fresh remote driver: creates a server session with the trace's facts.

    The server must have the trace's dataset registered under the same
    name.  (Server sessions have no warm-start knob; the curve comparison
    still holds because warm and cold solves converge to the same optimum
    only within solver tolerance — replay warm-started traces remotely
    with a nonzero ``tolerance``.)
    """
    info = trace.session_info
    dataset = info.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise DataShapeError(
            "trace header names no dataset; cannot create a remote session"
        )
    sid = client.create_session(
        dataset,
        objective=info.get("objective", "pca"),
        standardize=bool(info.get("standardize", False)),
        seed=info.get("session_seed", 0),
        session_id=session_id,
    )
    return RemoteDriver(client, sid)
