"""Service workload generator: concurrent policy-driven sessions.

Replays N autonomous exploration sessions against a running ``/v1``
service from a thread pool — each worker is a full policy loop
(:mod:`repro.explore.engine` over a :class:`RemoteDriver`), not a
synthetic request stream, so the traffic mix (session creation, detail
views, feedback batches) is exactly what real autonomous clients
generate.  Every request is timed per route template, and the run ends
with a ``BENCH_loadgen.json``-shaped report: p50/p95/p99 latency per
route, total throughput, solve-cache hit rate, and a per-session
outcome table.

Sessions default to ``seed + index`` seeds over a round-robin of
datasets and policies, so the workload is deterministic in *content*
(identical feedback sequences run to run) while the interleaving stays
genuinely concurrent — which is what makes the solve-cache hit rate a
meaningful number: concurrent twins of the same belief state should hit.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.explore.engine import RemoteDriver, run_exploration
from repro.explore.policies import make_policy
from repro.obs import bucket_bounds, histogram_quantile
from repro.resilience import chaos
from repro.resilience.chaos import ChaosError, parse_chaos
from repro.service.client import ServiceClient, ServiceClientError

#: Client counters summed across workers into ``totals["resilience"]``.
_CLIENT_COUNTERS = (
    "retries", "shed", "breaker_open", "deadline_exceeded", "dedup"
)

#: Percentiles reported per route.
_PERCENTILES = (50, 95, 99)

#: Slack for the client/server latency cross-check: client-side numbers
#: include urllib + socket overhead the server never sees, so agreement
#: is asserted only up to bucket resolution plus this many milliseconds.
_CROSSCHECK_OVERHEAD_MS = 25.0

_SESSION_SEGMENT = "/sessions/"


def route_template(method: str, prefix: str, path: str) -> str:
    """Collapse per-session paths onto one route key (``{id}`` placeholder)."""
    if path.startswith(_SESSION_SEGMENT) and path != _SESSION_SEGMENT:
        rest = path[len(_SESSION_SEGMENT):]
        head, _, tail = rest.partition("/")
        if head:
            path = _SESSION_SEGMENT + "{id}" + (f"/{tail}" if tail else "")
    # Query strings vary per request; the route is the path alone.
    path = path.split("?", 1)[0]
    return f"{method} {prefix}{path}"


class LatencyRecorder:
    """Thread-safe per-route latency samples (seconds) and error counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: dict[str, list[float]] = {}
        self._errors: dict[str, int] = {}

    def record(self, route: str, seconds: float, ok: bool) -> None:
        with self._lock:
            self._samples.setdefault(route, []).append(seconds)
            if not ok:
                self._errors[route] = self._errors.get(route, 0) + 1

    def summary(self) -> dict:
        """Per-route count / mean / percentiles (milliseconds) + errors."""
        with self._lock:
            samples = {route: list(vals) for route, vals in self._samples.items()}
            errors = dict(self._errors)
        routes = {}
        for route in sorted(samples):
            values = np.asarray(samples[route], dtype=np.float64) * 1e3
            stats = {
                "count": int(values.size),
                "mean_ms": float(values.mean()),
                "max_ms": float(values.max()),
                "errors": int(errors.get(route, 0)),
            }
            for q in _PERCENTILES:
                stats[f"p{q}_ms"] = float(np.percentile(values, q))
            routes[route] = stats
        return routes

    def totals(self) -> tuple[int, int]:
        """(total requests, total errors) recorded so far."""
        with self._lock:
            requests = sum(len(vals) for vals in self._samples.values())
            errors = sum(self._errors.values())
        return requests, errors


class InstrumentedClient(ServiceClient):
    """A :class:`ServiceClient` that times every request into a recorder.

    Instrumentation wraps the single-attempt layer, so each retry of a
    refused connection is its own sample — percentiles reflect wire
    latency, not the client's backoff sleeps.
    """

    def __init__(self, base_url: str, recorder: LatencyRecorder, **kwargs) -> None:
        super().__init__(base_url, **kwargs)
        self.recorder = recorder

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        decode_json: bool = True,
    ):
        route = route_template(method, self.prefix, path)
        start = time.perf_counter()
        try:
            # Client-side chaos point: `--chaos "client.request:error:p=..."`
            # injects ambiguous transport failures *before* the wire, so the
            # retry/breaker machinery is exercised without a faulty server.
            chaos.hit("client.request")
            payload = super()._request_once(
                method, path, body, decode_json=decode_json
            )
        except ChaosError as exc:
            self.recorder.record(route, time.perf_counter() - start, ok=False)
            raise ServiceClientError(
                0, {"error": f"injected fault: {exc}"}
            ) from exc
        except ServiceClientError:
            self.recorder.record(route, time.perf_counter() - start, ok=False)
            raise
        self.recorder.record(route, time.perf_counter() - start, ok=True)
        return payload


@dataclass(frozen=True)
class LoadGenConfig:
    """One workload run.

    Attributes
    ----------
    url:
        Base URL of the running service (e.g. ``http://127.0.0.1:8000``).
    sessions:
        Number of policy-driven sessions to run.
    workers:
        Thread-pool size (default: ``min(sessions, 8)``).
    policies:
        Policy names assigned round-robin over sessions.
    datasets:
        Dataset names assigned round-robin (default: every dataset the
        server advertises).
    rounds:
        Round budget per session.
    objective:
        Default session objective.
    seed:
        Session ``i`` runs with seed ``seed + i`` (policy and session).
    timeout:
        Per-request client timeout, seconds.
    cleanup:
        Delete each session from the server after its run.
    obs:
        Scrape the server's ``/v1/metrics`` after the run and cross-check
        its per-route latency histograms against the client-side
        percentiles (requires observability enabled on the server).
    scrape_interval:
        With ``obs``, also scrape ``/v1/metrics`` every this many seconds
        *during* the run and record the series into the report (so
        throughput-over-time and warmup effects are visible, not just
        end-of-run aggregates).  ``0`` disables the mid-run sampler.
    deadline_ms:
        Per-request deadline each worker sends as ``X-Repro-Deadline-Ms``
        (``None`` sends none); deadline-shed requests land in the
        report's resilience counters.
    chaos:
        Client-side fault spec (:func:`repro.resilience.chaos.parse_chaos`
        grammar) installed for the duration of the run; the meaningful
        point is ``client.request`` (latency / error before each
        attempt).  Exercises the retry and breaker paths without needing
        a misbehaving server.
    chaos_seed:
        Seed of the chaos registry's RNG, for reproducible fault trains.
    """

    url: str
    sessions: int = 8
    workers: int | None = None
    policies: tuple[str, ...] = ("objective-sweep",)
    datasets: tuple[str, ...] | None = None
    rounds: int = 3
    objective: str = "pca"
    seed: int = 0
    timeout: float = 60.0
    cleanup: bool = True
    obs: bool = False
    scrape_interval: float = 0.5
    deadline_ms: float | None = None
    chaos: str | None = None
    chaos_seed: int | None = None

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "sessions": self.sessions,
            "workers": self.resolved_workers(),
            "policies": list(self.policies),
            "datasets": list(self.datasets) if self.datasets else None,
            "rounds": self.rounds,
            "objective": self.objective,
            "seed": self.seed,
            "timeout": self.timeout,
            "cleanup": self.cleanup,
            "obs": self.obs,
            "scrape_interval": self.scrape_interval,
            "deadline_ms": self.deadline_ms,
            "chaos": self.chaos,
            "chaos_seed": self.chaos_seed,
        }

    def resolved_workers(self) -> int:
        return self.workers if self.workers else min(self.sessions, 8)


@dataclass
class LoadGenReport:
    """Everything one workload run measured (JSON-ready via ``to_dict``)."""

    config: dict
    routes: dict
    totals: dict
    cache: dict | None
    server: dict | None
    sessions: list[dict] = field(default_factory=list)
    obs: dict | None = None

    def to_dict(self) -> dict:
        return {
            "suite": "loadgen",
            "config": self.config,
            "routes": self.routes,
            "totals": self.totals,
            "cache": self.cache,
            "server": self.server,
            "sessions": self.sessions,
            "obs": self.obs,
        }


def capture_obs(control: ServiceClient, client_routes: dict) -> dict | None:
    """Scrape server-side metrics and cross-check latency percentiles.

    For every route both sides saw, the server's request-duration
    histogram is reduced to p50/p95/p99 estimates
    (:func:`histogram_quantile`) and the client-side percentile is
    checked against the histogram's bucket bounds — agreement "within
    bucket resolution" plus a fixed HTTP-overhead allowance, since the
    client numbers include socket time the server never measures.

    Returns ``None`` when the server cannot be scraped at all,
    ``{"enabled": False}`` when observability is off server-side.
    """
    try:
        scraped = control.metrics()
    except ServiceClientError:
        return None
    if not scraped.get("enabled"):
        return {"enabled": False}
    family = scraped.get("families", {}).get(
        "repro_request_duration_seconds", {}
    )
    server_routes: dict = {}
    crosscheck: dict = {}
    for sample in family.get("samples", []):
        route = sample.get("labels", {}).get("route", "")
        buckets = [tuple(edge) for edge in sample.get("buckets", [])]
        count = sample.get("count", 0)
        if not route or count <= 0:
            continue
        entry: dict = {"count": int(count)}
        for q in _PERCENTILES:
            entry[f"p{q}_ms"] = (
                histogram_quantile(buckets, count, q / 100.0) * 1e3
            )
        server_routes[route] = entry
        client = client_routes.get(route)
        if client is None:
            continue
        checks: dict = {}
        for q in _PERCENTILES:
            lower, upper = bucket_bounds(buckets, count, q / 100.0)
            lower_ms, upper_ms = lower * 1e3, upper * 1e3
            client_ms = client[f"p{q}_ms"]
            # Generous on purpose: this guards against gross divergence
            # (wrong units, mislabelled routes), not clock-level agreement.
            ok = client_ms >= lower_ms - _CROSSCHECK_OVERHEAD_MS and (
                upper_ms != upper_ms  # NaN guard (empty histogram)
                or upper == float("inf")
                or client_ms
                <= upper_ms + max(_CROSSCHECK_OVERHEAD_MS, upper_ms)
            )
            checks[f"p{q}"] = {
                "client_ms": client_ms,
                "server_ms": entry[f"p{q}_ms"],
                "bucket_ms": [lower_ms, upper_ms],
                "within_tolerance": bool(ok),
            }
        crosscheck[route] = checks
    return {
        "enabled": True,
        "server_routes": server_routes,
        "crosscheck": crosscheck,
    }


class _MetricsSampler(threading.Thread):
    """Scrapes ``/v1/metrics?format=json`` on an interval during the run.

    Each scrape is stored as a time-series sample in the shape the
    :mod:`repro.obs.timeseries` derivation helpers consume, so the
    report's ``obs.series`` can be post-processed with the same
    counter→rate math the server's history endpoint uses.  Scrape
    failures are skipped (the workload, not the sampler, is the
    experiment).
    """

    def __init__(self, control: ServiceClient, interval: float) -> None:
        super().__init__(name="loadgen-scrape", daemon=True)
        self.control = control
        self.interval = float(interval)
        self.samples: list[dict] = []
        self._lock = threading.Lock()
        # NB: not named _stop — Thread.join() calls a private _stop().
        self._done = threading.Event()

    def scrape(self) -> None:
        try:
            payload = self.control.metrics()
        except ServiceClientError:
            return
        if not payload.get("enabled"):
            return
        sample = {
            "ts": time.time(),
            "mono": time.perf_counter(),
            "families": payload.get("families", {}),
        }
        with self._lock:
            self.samples.append(sample)

    def run(self) -> None:
        self.scrape()
        while not self._done.wait(self.interval):
            self.scrape()

    def finish(self) -> list[dict]:
        """Stop the sampler, take one final scrape, return the series."""
        self._done.set()
        self.join(timeout=self.interval + 5.0)
        self.scrape()
        with self._lock:
            return list(self.samples)


def _series_timeline(samples: Sequence[dict]) -> list[dict]:
    """Per-interval request/solve rates from consecutive scrapes."""
    from repro.obs.timeseries import counter_delta

    timeline = []
    origin = samples[0]["mono"] if samples else 0.0
    for first, last in zip(samples, samples[1:]):
        window = max(last["mono"] - first["mono"], 1e-9)
        requests = counter_delta(first, last, "repro_requests_total")
        hits = counter_delta(
            first, last, "repro_solve_cache_lookups_total", {"result": "hit"}
        )
        misses = counter_delta(
            first, last, "repro_solve_cache_lookups_total", {"result": "miss"}
        )
        lookups = hits + misses
        timeline.append({
            "elapsed_s": last["mono"] - origin,
            "requests_per_s": requests / window,
            "solves_per_s": misses / window,
            "cache_hit_rate": (hits / lookups) if lookups else None,
        })
    return timeline


def _run_one_session(
    index: int, config: LoadGenConfig, datasets: Sequence[str],
    recorder: LatencyRecorder,
) -> dict:
    dataset = datasets[index % len(datasets)]
    policy_name = config.policies[index % len(config.policies)]
    seed = config.seed + index
    client = InstrumentedClient(
        config.url, recorder,
        timeout=config.timeout,
        deadline_ms=config.deadline_ms,
    )
    outcome = {
        "index": index,
        "dataset": dataset,
        "policy": policy_name,
        "seed": seed,
        "session_id": None,
        "rounds": 0,
        "final_knowledge_nats": None,
        "stopped_by": None,
        "error": None,
    }
    try:
        policy = make_policy(policy_name)
        sid = client.create_session(
            dataset,
            objective=config.objective,
            standardize=True,
            seed=seed,
        )
        outcome["session_id"] = sid
        driver = RemoteDriver(client, sid)
        result = run_exploration(
            policy, driver, rounds=config.rounds, seed=seed
        )
        outcome["rounds"] = len(result.rounds)
        outcome["final_knowledge_nats"] = result.knowledge_curve()[-1]
        outcome["stopped_by"] = result.stopped_by
        if config.cleanup:
            client.delete_session(sid)
    except Exception as exc:  # noqa: BLE001 — one failed session must be
        # reported as a failed session, not abort the whole run (and lose
        # every other worker's measurements).
        outcome["error"] = f"{type(exc).__name__}: {exc}"
    outcome["client"] = dict(client.counters)
    outcome["last_attempts"] = client.last_attempts
    return outcome


def run_loadgen(config: LoadGenConfig) -> LoadGenReport:
    """Drive the configured workload; returns the measured report.

    Raises :class:`ServiceClientError` when the server is unreachable at
    startup (after the client's bounded connection retries).
    """
    if config.sessions <= 0:
        raise ValueError(f"sessions must be positive, got {config.sessions}")
    if not config.policies:
        raise ValueError("loadgen needs at least one policy name")
    for name in config.policies:
        make_policy(name)  # fail fast on unknown policies
    recorder = LatencyRecorder()
    control = ServiceClient(config.url, timeout=config.timeout)
    datasets = (
        list(config.datasets) if config.datasets else control.datasets()
    )
    if not datasets:
        raise ValueError("the server advertises no datasets to explore")

    sampler = None
    if config.obs and config.scrape_interval > 0:
        sampler = _MetricsSampler(control, config.scrape_interval)
        sampler.start()
    if config.chaos:
        chaos.configure_chaos(
            parse_chaos(config.chaos), seed=config.chaos_seed
        )
    started = time.perf_counter()
    try:
        with ThreadPoolExecutor(
            max_workers=config.resolved_workers(), thread_name_prefix="loadgen"
        ) as pool:
            outcomes = list(
                pool.map(
                    lambda i: _run_one_session(i, config, datasets, recorder),
                    range(config.sessions),
                )
            )
    finally:
        if config.chaos:
            chaos.disable_chaos()
    wall = time.perf_counter() - started
    series = sampler.finish() if sampler is not None else None

    requests, errors = recorder.totals()
    routes = recorder.summary()
    try:
        server_stats = control.server_stats()
    except ServiceClientError:
        server_stats = None
    cache = (server_stats or {}).get("cache")
    obs_capture = capture_obs(control, routes) if config.obs else None
    if series is not None and obs_capture is not None:
        obs_capture["series"] = {
            "interval_seconds": config.scrape_interval,
            "samples": series,
            "timeline": _series_timeline(series),
        }
    resilience = {
        key: sum(o.get("client", {}).get(key, 0) for o in outcomes)
        for key in _CLIENT_COUNTERS
    }
    return LoadGenReport(
        config=config.to_dict(),
        routes=routes,
        totals={
            "requests": requests,
            "errors": errors,
            "wall_seconds": wall,
            "throughput_rps": (requests / wall) if wall > 0 else 0.0,
            "sessions_ok": sum(1 for o in outcomes if o["error"] is None),
            "sessions_failed": sum(
                1 for o in outcomes if o["error"] is not None
            ),
            "resilience": resilience,
        },
        cache=cache,
        server=server_stats,
        sessions=outcomes,
        obs=obs_capture,
    )


def write_report(report: LoadGenReport, path: str | Path) -> Path:
    """Write the report as a ``BENCH_loadgen.json`` artifact; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return target


def format_report(report: LoadGenReport) -> str:
    """Human-readable summary table (what the CLI prints)."""
    lines = ["route                                    count    p50ms    p95ms    p99ms  err"]
    for route, stats in report.routes.items():
        lines.append(
            f"{route:<40} {stats['count']:>5} "
            f"{stats['p50_ms']:>8.2f} {stats['p95_ms']:>8.2f} "
            f"{stats['p99_ms']:>8.2f} {stats['errors']:>4}"
        )
    totals = report.totals
    lines.append(
        f"total: {totals['requests']} requests in "
        f"{totals['wall_seconds']:.2f}s -> "
        f"{totals['throughput_rps']:.1f} req/s; "
        f"{totals['sessions_ok']} session(s) ok, "
        f"{totals['sessions_failed']} failed"
    )
    resilience = totals.get("resilience") or {}
    if any(resilience.values()):
        lines.append(
            "resilience: "
            f"{resilience.get('retries', 0)} retried, "
            f"{resilience.get('shed', 0)} shed, "
            f"{resilience.get('breaker_open', 0)} breaker-open, "
            f"{resilience.get('deadline_exceeded', 0)} deadline-exceeded, "
            f"{resilience.get('dedup', 0)} deduplicated"
        )
    if report.cache:
        lines.append(
            f"solve cache: hit rate {report.cache.get('hit_rate', 0.0):.2%} "
            f"({report.cache.get('hits', 0)} hits / "
            f"{report.cache.get('misses', 0)} misses)"
        )
    if report.obs is not None:
        if not report.obs.get("enabled"):
            lines.append("obs: server-side observability disabled (no cross-check)")
        else:
            checks = [
                check["within_tolerance"]
                for route_checks in report.obs["crosscheck"].values()
                for check in route_checks.values()
            ]
            agreed = sum(checks)
            lines.append(
                f"obs: {len(report.obs['server_routes'])} server-side route "
                f"histogram(s); latency cross-check {agreed}/{len(checks)} "
                "within bucket resolution"
            )
            series = report.obs.get("series")
            if series and series.get("timeline"):
                rates = [t["requests_per_s"] for t in series["timeline"]]
                lines.append(
                    f"obs series: {len(series['samples'])} scrape(s) @ "
                    f"{series['interval_seconds']:g}s — req/s "
                    f"min {min(rates):.1f} / peak {max(rates):.1f}"
                )
    return "\n".join(lines)
