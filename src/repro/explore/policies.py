"""Exploration policies: programmable stand-ins for the SIDER user.

The paper's loop needs a human to look at the most informative view and
say what they now know.  A policy is that human, written down: given an
:class:`Observation` of the current belief state (the view, per-row
surprise, projected coordinates, accumulated knowledge) it proposes a
batch of typed :mod:`repro.feedback` objects — the *only* channel
policies get, so everything a policy can do a real user could have done
through the UI or the ``/v1`` API.

Built-in policies (see :data:`POLICIES`):

``surprise``         :class:`SurpriseGreedy` — cluster the most surprising
                     rows in the current projected view and mark the
                     largest unseen group as a cluster.
``objective-sweep``  :class:`ObjectiveSweep` — rotate through registered
                     view objectives, confirming each informative view
                     with :class:`~repro.feedback.ViewSelectionFeedback`
                     (or denying it by proposing nothing).
``random-walk``      :class:`RandomWalk` — seeded random row sets and
                     feedback kinds; the baseline other policies are
                     measured against.

Policies are deterministic given a seed: all randomness flows through the
``numpy`` generator the engine hands to :meth:`ExplorationPolicy.propose`,
which is what makes recorded traces replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import ReproError
from repro.feedback import ClusterFeedback, Feedback, ViewSelectionFeedback
from repro.projection import registry


class UnknownPolicyError(ReproError, ValueError):
    """The requested policy name is not in :data:`POLICIES`."""


@dataclass(frozen=True)
class Observation:
    """What a policy sees before proposing feedback for one round.

    Attributes
    ----------
    round_index:
        Loop round, starting at 0.
    objective:
        Name of the objective that ranked the current view.
    axes, scores:
        The view's ``(2, d)`` direction vectors and their two scores.
    top_score:
        ``max(|scores|)`` — the "is anything left unexplained?" number.
    knowledge_nats:
        Accumulated knowledge KL(p || prior) of the belief state, nats.
    row_surprise:
        Per-row negative log density under the current background (n,).
    projected:
        Data projected onto the view axes, ``(n, 2)``.
    """

    round_index: int
    objective: str
    axes: np.ndarray
    scores: np.ndarray
    top_score: float
    knowledge_nats: float
    row_surprise: np.ndarray
    projected: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.row_surprise.shape[0])


@runtime_checkable
class ExplorationPolicy(Protocol):
    """What an exploration policy must provide.

    Attributes
    ----------
    name:
        Registry key, recorded in trace headers.
    patience:
        How many *consecutive* empty proposals the engine tolerates before
        declaring the policy exhausted (an objective sweep legitimately
        denies several views in a row; a greedy policy is done after one).
    """

    name: str
    patience: int

    def reset(self) -> None:
        """Forget per-run state; called by the engine before each run."""
        ...

    def objective_for_round(self, round_index: int) -> str | None:
        """Objective to rank this round's view with (None = session default)."""
        ...

    def propose(
        self, observation: Observation, rng: np.random.Generator
    ) -> list[Feedback]:
        """Feedback for this round; an empty list means "nothing to mark"."""
        ...

    def config(self) -> dict:
        """JSON-serialisable parameters, recorded in trace headers."""
        ...


def _components_within(points: np.ndarray, eps: float) -> list[np.ndarray]:
    """Connected components of points linked when closer than ``eps``.

    Single linkage on the capped candidate set: the dense pairwise
    adjacency goes through scipy's C-speed connected-components pass.
    Returns index arrays into ``points``, largest component first;
    deterministic.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    diff = points[:, None, :] - points[None, :, :]
    close = np.einsum("ijk,ijk->ij", diff, diff) <= eps * eps
    _, labels = connected_components(csr_matrix(close), directed=False)
    components = [np.flatnonzero(labels == r) for r in np.unique(labels)]
    # Largest first; ties break on the smallest member index (stable).
    components.sort(key=lambda idx: (-idx.size, int(idx[0])))
    return components


class SurpriseGreedy:
    """Mark the largest unseen group of high-surprise rows as a cluster.

    The principled version of what a user does with the ghost overlay:
    find the rows the current belief state considers most unlikely, see
    whether they group together in the view shown, and tell the system
    "that is a cluster".  Candidate rows are the top ``fraction`` by
    :meth:`~repro.core.background.BackgroundModel.row_surprise`, grouped by
    single linkage in the projected 2-D view; the largest group with at
    least ``min_rows`` members that has not been proposed before becomes a
    :class:`~repro.feedback.ClusterFeedback`.

    Parameters
    ----------
    fraction:
        Fraction of rows treated as surprising (by surprise quantile).
    min_rows:
        Smallest group worth marking (tiny groups overfit the background).
    max_candidates:
        Cap on the candidate set (keeps the linkage pass O(k^2)-small on
        big datasets).
    link_scale:
        Linkage distance as a multiple of the candidate cloud's RMS spread.
    """

    name = "surprise"
    patience = 1

    def __init__(
        self,
        fraction: float = 0.25,
        min_rows: int = 8,
        max_candidates: int = 512,
        link_scale: float = 0.25,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if min_rows < 2:
            raise ValueError(f"min_rows must be >= 2, got {min_rows}")
        self.fraction = float(fraction)
        self.min_rows = int(min_rows)
        self.max_candidates = int(max_candidates)
        self.link_scale = float(link_scale)
        self._seen: set[frozenset[int]] = set()

    def reset(self) -> None:
        self._seen = set()

    def objective_for_round(self, round_index: int) -> str | None:
        return None  # the session's default objective

    def propose(
        self, observation: Observation, rng: np.random.Generator
    ) -> list[Feedback]:
        surprise = observation.row_surprise
        n = surprise.shape[0]
        k = max(self.min_rows, int(round(n * self.fraction)))
        k = min(k, n, self.max_candidates)
        # Descending-surprise order with index tiebreak: deterministic.
        order = np.lexsort((np.arange(n), -surprise))
        candidates = np.sort(order[:k])
        points = observation.projected[candidates]
        spread = float(np.sqrt(np.mean(np.sum(
            (points - points.mean(axis=0)) ** 2, axis=1
        ))))
        eps = self.link_scale * spread if spread > 0.0 else 1e-12
        for component in _components_within(points, eps):
            if component.size < self.min_rows:
                break  # components are sorted largest-first
            rows = frozenset(int(r) for r in candidates[component])
            if rows in self._seen:
                continue
            self._seen.add(rows)
            return [
                ClusterFeedback(
                    rows=sorted(rows),
                    label=f"surprise[{observation.round_index}]",
                )
            ]
        return []

    def config(self) -> dict:
        return {
            "fraction": self.fraction,
            "min_rows": self.min_rows,
            "max_candidates": self.max_candidates,
            "link_scale": self.link_scale,
        }


class ObjectiveSweep:
    """Rotate through view objectives, confirming or denying each view.

    Round ``i`` ranks the view with objective ``i mod len(objectives)``.
    If the view still shows signal (``top_score`` at least
    ``score_threshold``), the rows most prominent in it — the top
    ``select_fraction`` by projected distance from the view's centre — are
    confirmed via :class:`~repro.feedback.ViewSelectionFeedback` ("yes, I
    see this, along exactly these axes").  A quiet view, or a selection
    already confirmed, is denied by proposing nothing; after a full sweep
    of denials the engine declares the policy exhausted
    (``patience == len(objectives)``).

    Parameters
    ----------
    objectives:
        Names to sweep (default: every objective in the registry at
        :meth:`reset` time, sorted — so plugins join the sweep).
    score_threshold:
        Minimum ``top_score`` for a view to count as informative.
    select_fraction:
        Fraction of rows confirmed from an informative view.
    min_rows:
        Floor on the confirmed selection size.
    """

    name = "objective-sweep"

    def __init__(
        self,
        objectives: list[str] | None = None,
        score_threshold: float = 5e-3,
        select_fraction: float = 0.2,
        min_rows: int = 5,
    ) -> None:
        self._requested = list(objectives) if objectives is not None else None
        self.score_threshold = float(score_threshold)
        self.select_fraction = float(select_fraction)
        self.min_rows = int(min_rows)
        self.objectives: list[str] = list(self._requested or [])
        self._seen: set[frozenset[int]] = set()

    @property
    def patience(self) -> int:
        return max(1, len(self.objectives))

    def reset(self) -> None:
        if self._requested is not None:
            unknown = [n for n in self._requested if not registry.is_registered(n)]
            if unknown:
                raise UnknownPolicyError(
                    f"objective sweep over unregistered objectives: {unknown}"
                )
            self.objectives = list(self._requested)
        else:
            self.objectives = registry.names()
        self._seen = set()

    def objective_for_round(self, round_index: int) -> str | None:
        if not self.objectives:
            return None
        return self.objectives[round_index % len(self.objectives)]

    def propose(
        self, observation: Observation, rng: np.random.Generator
    ) -> list[Feedback]:
        if observation.top_score < self.score_threshold:
            return []  # deny: this view shows nothing
        centred = observation.projected - observation.projected.mean(axis=0)
        distance = np.einsum("ij,ij->i", centred, centred)
        n = distance.shape[0]
        k = min(n, max(self.min_rows, int(round(n * self.select_fraction))))
        order = np.lexsort((np.arange(n), -distance))
        rows = frozenset(int(r) for r in order[:k])
        if rows in self._seen:
            return []  # deny: already confirmed this selection
        self._seen.add(rows)
        return [
            ViewSelectionFeedback(
                rows=sorted(rows),
                label=f"{observation.objective}[{observation.round_index}]",
            )
        ]

    def config(self) -> dict:
        return {
            "objectives": self._requested,
            "score_threshold": self.score_threshold,
            "select_fraction": self.select_fraction,
            "min_rows": self.min_rows,
        }


class RandomWalk:
    """Seeded random feedback: the baseline autonomous explorer.

    Each round marks a uniformly random row subset, alternating between
    cluster and view-selection feedback by coin flip.  Useless as an
    analyst, invaluable as a load profile and as the floor any smarter
    policy must beat on knowledge gained per round.
    """

    name = "random-walk"
    patience = 1

    def __init__(
        self, min_rows: int = 5, max_fraction: float = 0.3
    ) -> None:
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError(
                f"max_fraction must be in (0, 1], got {max_fraction}"
            )
        self.min_rows = int(min_rows)
        self.max_fraction = float(max_fraction)

    def reset(self) -> None:
        pass

    def objective_for_round(self, round_index: int) -> str | None:
        return None

    def propose(
        self, observation: Observation, rng: np.random.Generator
    ) -> list[Feedback]:
        n = observation.n_rows
        upper = max(self.min_rows, int(round(n * self.max_fraction)))
        upper = min(upper, n)
        lower = min(self.min_rows, n)
        k = int(rng.integers(lower, upper + 1))
        rows = np.sort(rng.choice(n, size=k, replace=False))
        label = f"random[{observation.round_index}]"
        if rng.random() < 0.5:
            return [ClusterFeedback(rows=rows, label=label)]
        return [ViewSelectionFeedback(rows=rows, label=label)]

    def config(self) -> dict:
        return {"min_rows": self.min_rows, "max_fraction": self.max_fraction}


#: Policy registry: name -> zero-config factory.  ``make_policy`` passes
#: keyword overrides through to the concrete constructor.
POLICIES: dict[str, Callable[..., ExplorationPolicy]] = {
    SurpriseGreedy.name: SurpriseGreedy,
    ObjectiveSweep.name: ObjectiveSweep,
    RandomWalk.name: RandomWalk,
}


def policy_names() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)


def make_policy(name: str, **kwargs) -> ExplorationPolicy:
    """Instantiate a registered policy by name.

    Raises
    ------
    UnknownPolicyError
        When the name is not in :data:`POLICIES` (a :class:`ValueError`,
        matching the objective-registry convention).
    """
    factory = POLICIES.get(name)
    if factory is None:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; registered: {policy_names()}"
        )
    return factory(**kwargs)
