"""The autonomous exploration engine: policy + session, closed loop.

Drives the paper's interactive cycle without a human: each round the
engine shows the policy an :class:`~repro.explore.policies.Observation`
of the current belief state, applies whatever typed feedback the policy
proposes through the single ``apply_many`` codepath, refits, and records
what happened.  The *same* engine runs against an in-process
:class:`~repro.core.session.ExplorationSession` or a remote ``/v1``
service session — the :class:`SessionDriver` protocol is the seam — so a
policy debugged locally generates service workload unchanged.

Determinism contract: a run is a pure function of (policy + config,
dataset, session seed, engine seed).  All policy randomness flows through
one seeded generator, observations are computed from deterministic fits,
and the wall-clock stopping rule takes an injectable clock — which is
what lets :mod:`repro.explore.trace` replay a recorded run bit-for-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.core.session import ExplorationSession
from repro.explore.policies import ExplorationPolicy, Observation
from repro.explore.stopping import (
    RoundBudget,
    RunState,
    StoppingRule,
    first_reason,
)
from repro.feedback import Feedback, feedback_from_dict


class SessionDriver(Protocol):
    """Uniform loop surface over a local or remote exploration session."""

    def observe(
        self, round_index: int, objective: str | None
    ) -> tuple[Observation, dict]:
        """Fit (if needed) and describe the current belief state.

        Returns ``(observation, meta)`` where ``meta`` carries solver
        diagnostics (``solver``, ``cache_hit``) when available.
        """
        ...

    def apply(self, batch: Sequence[Feedback]) -> dict:
        """Apply one feedback batch; returns ``{"labels", "n_constraints"}``."""
        ...

    def describe(self) -> dict:
        """Static session facts for trace headers (dataset, seed, ...)."""
        ...


class InProcessDriver:
    """Drive an :class:`ExplorationSession` directly (no sockets).

    Parameters
    ----------
    session:
        The session to drive.
    info:
        Facts the session object itself does not know — dataset name,
        the ``standardize`` flag it was built with — recorded into trace
        headers so a replay can reconstruct the same session.
    """

    def __init__(self, session: ExplorationSession, info: dict | None = None) -> None:
        self.session = session
        self.info = dict(info or {})

    def observe(
        self, round_index: int, objective: str | None
    ) -> tuple[Observation, dict]:
        session = self.session
        view = session.current_view(objective)
        model = session.model
        observation = Observation(
            round_index=round_index,
            objective=view.objective,
            axes=view.axes.copy(),
            scores=view.scores.copy(),
            top_score=float(np.max(np.abs(view.scores))),
            knowledge_nats=float(model.knowledge_nats()),
            row_surprise=model.row_surprise(),
            projected=view.project(model.data),
        )
        report = model.last_report
        meta = {
            "cache_hit": False,
            "solver": {
                "converged": bool(report.converged),
                "sweeps": int(report.sweeps),
                "elapsed": float(report.elapsed),
            }
            if report is not None
            else None,
        }
        return observation, meta

    def apply(self, batch: Sequence[Feedback]) -> dict:
        labels = self.session.apply_many(list(batch))
        return {
            "labels": labels,
            "n_constraints": self.session.model.n_constraints,
        }

    def describe(self) -> dict:
        info = {"mode": "in-process", "objective": self.session.objective}
        info.update(self.info)
        return info


class RemoteDriver:
    """Drive a ``/v1`` service session through a :class:`ServiceClient`.

    Observations come from the detail view payload
    (``GET /v1/sessions/{id}/view?detail=1``), which carries the per-row
    surprise, projected coordinates and accumulated knowledge alongside
    the axes; feedback goes through the batch endpoint.  The driver is a
    pure client — everything it does maps 1:1 onto public API routes.
    """

    def __init__(self, client, session_id: str) -> None:
        self.client = client
        self.session_id = session_id

    def observe(
        self, round_index: int, objective: str | None
    ) -> tuple[Observation, dict]:
        payload = self.client.view(
            self.session_id, objective=objective, detail=True
        )
        observation = Observation(
            round_index=round_index,
            objective=str(payload["objective"]),
            axes=np.asarray(payload["axes"], dtype=np.float64),
            scores=np.asarray(payload["scores"], dtype=np.float64),
            top_score=float(payload["top_score"]),
            knowledge_nats=float(payload["knowledge_nats"]),
            row_surprise=np.asarray(payload["row_surprise"], dtype=np.float64),
            projected=np.asarray(payload["projected"], dtype=np.float64),
        )
        meta = {
            "cache_hit": bool(payload.get("cache_hit", False)),
            "solver": payload.get("solver"),
        }
        return observation, meta

    def apply(self, batch: Sequence[Feedback]) -> dict:
        stats = self.client.apply_feedback(self.session_id, list(batch))
        return {
            "labels": list(stats.get("applied", [])),
            "n_constraints": stats.get("n_constraints"),
        }

    def describe(self) -> dict:
        stats = self.client.session(self.session_id)
        return {
            "mode": "remote",
            "dataset": stats.get("dataset"),
            "objective": stats.get("objective"),
            "standardize": stats.get("standardize"),
            "session_seed": stats.get("seed"),
        }


@dataclass
class RoundRecord:
    """One completed engine round (what traces persist).

    ``knowledge_nats`` is the accumulated knowledge *after* this round's
    feedback was applied and the background refit; ``top_score`` is the
    view score the policy saw *before* proposing.
    """

    index: int
    objective: str
    feedback: list[Feedback]
    labels: list[str]
    knowledge_nats: float
    top_score: float
    n_constraints: int | None
    solver: dict | None = None
    cache_hit: bool = False

    def to_dict(self) -> dict:
        return {
            "type": "round",
            "index": self.index,
            "objective": self.objective,
            "feedback": [fb.to_dict() for fb in self.feedback],
            "labels": list(self.labels),
            "knowledge_nats": self.knowledge_nats,
            "top_score": self.top_score,
            "n_constraints": self.n_constraints,
            "solver": self.solver,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundRecord":
        return cls(
            index=int(payload["index"]),
            objective=str(payload["objective"]),
            feedback=[feedback_from_dict(fb) for fb in payload["feedback"]],
            labels=[str(x) for x in payload.get("labels", [])],
            knowledge_nats=float(payload["knowledge_nats"]),
            top_score=float(payload["top_score"]),
            n_constraints=payload.get("n_constraints"),
            solver=payload.get("solver"),
            cache_hit=bool(payload.get("cache_hit", False)),
        )


@dataclass
class ExplorationResult:
    """Everything one autonomous run produced."""

    policy: str
    policy_config: dict
    session: dict
    seed: int | None
    initial_knowledge_nats: float
    rounds: list[RoundRecord] = field(default_factory=list)
    stopped_by: str = ""
    elapsed: float = 0.0

    def knowledge_curve(self) -> list[float]:
        """``knowledge_nats`` per round, with the baseline at index 0."""
        return [self.initial_knowledge_nats] + [
            record.knowledge_nats for record in self.rounds
        ]

    def feedback_sequence(self) -> list[Feedback]:
        """Every feedback object applied, in order."""
        return [fb for record in self.rounds for fb in record.feedback]


def run_exploration(
    policy: ExplorationPolicy,
    driver: SessionDriver,
    rounds: int | None = None,
    stopping: Sequence[StoppingRule] | None = None,
    seed: int | None = 0,
    clock: Callable[[], float] = time.monotonic,
) -> ExplorationResult:
    """Run one policy against one session until a stopping rule fires.

    Parameters
    ----------
    policy:
        The exploration policy (reset before the run starts).
    driver:
        In-process or remote session driver.
    rounds:
        Convenience round budget; folded into ``stopping``.
    stopping:
        Additional stopping rules (checked in order, first reason wins).
        A policy that proposes nothing for ``policy.patience`` consecutive
        rounds ends the run regardless ("policy-exhausted").
    seed:
        Seed of the generator handed to every ``policy.propose`` call.
    clock:
        Time source for the wall-clock budget and ``elapsed`` (injectable
        so tests and replays stay deterministic).
    """
    rules: list[StoppingRule] = list(stopping or [])
    if rounds is not None:
        rules.append(RoundBudget(max_rounds=int(rounds)))
    if not rules:
        raise ValueError(
            "run_exploration needs a round budget or at least one stopping rule"
        )
    policy.reset()
    rng = np.random.default_rng(seed)
    state = RunState(started_at=clock(), clock=clock)

    observation, _ = driver.observe(0, policy.objective_for_round(0))
    state.knowledge_curve.append(observation.knowledge_nats)
    result = ExplorationResult(
        policy=policy.name,
        policy_config=policy.config(),
        session=driver.describe(),
        seed=seed,
        initial_knowledge_nats=observation.knowledge_nats,
    )

    patience = max(1, int(getattr(policy, "patience", 1)))
    empty_streak = 0
    n_constraints: int | None = None
    index = 0
    while True:
        reason = first_reason(rules, state)
        if reason is not None:
            result.stopped_by = reason
            break
        batch = policy.propose(observation, rng)
        if batch:
            applied = driver.apply(batch)
            labels = applied["labels"]
            if applied.get("n_constraints") is not None:
                n_constraints = int(applied["n_constraints"])
            empty_streak = 0
        else:
            labels = []
            empty_streak += 1
        next_observation, next_meta = driver.observe(
            index + 1, policy.objective_for_round(index + 1)
        )
        result.rounds.append(
            RoundRecord(
                index=index,
                objective=observation.objective,
                feedback=list(batch),
                labels=labels,
                knowledge_nats=next_observation.knowledge_nats,
                top_score=observation.top_score,
                n_constraints=n_constraints,
                solver=next_meta.get("solver"),
                cache_hit=bool(next_meta.get("cache_hit", False)),
            )
        )
        state.rounds_completed += 1
        state.knowledge_curve.append(next_observation.knowledge_nats)
        if not batch and empty_streak >= patience:
            result.stopped_by = (
                f"policy-exhausted ({empty_streak} empty round"
                f"{'s' if empty_streak != 1 else ''})"
            )
            break
        observation = next_observation
        index += 1

    result.elapsed = clock() - state.started_at
    return result
