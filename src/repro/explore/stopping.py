"""Stopping rules: when an autonomous exploration run should end.

The paper's loop stops when the user is satisfied; an autonomous run
needs that judgement written down.  A stopping rule inspects the engine's
:class:`RunState` after every round and returns a reason string to stop,
or ``None`` to keep going.  Rules compose as a plain list — the first one
that fires wins — and every built-in is deterministic given the same
round sequence (the wall-clock rule takes an injectable clock so tests
and replays stay reproducible).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable


@dataclass
class RunState:
    """What stopping rules get to look at after each round.

    Attributes
    ----------
    rounds_completed:
        Number of policy rounds finished so far.
    knowledge_curve:
        ``knowledge_nats`` after every round, oldest first, with the
        pre-feedback baseline at index 0.
    started_at:
        Engine clock reading when the run began.
    clock:
        The engine's time source (monotonic by default).
    """

    rounds_completed: int = 0
    knowledge_curve: list[float] = field(default_factory=list)
    started_at: float = 0.0
    clock: Callable[[], float] = time.monotonic


@runtime_checkable
class StoppingRule(Protocol):
    """One run-termination criterion."""

    def should_stop(self, state: RunState) -> str | None:
        """A human-readable reason to stop now, or ``None``."""
        ...


@dataclass(frozen=True)
class RoundBudget:
    """Stop after a fixed number of rounds (the ``--rounds`` flag)."""

    max_rounds: int

    def should_stop(self, state: RunState) -> str | None:
        if state.rounds_completed >= self.max_rounds:
            return f"round-budget ({self.max_rounds})"
        return None


@dataclass(frozen=True)
class KnowledgeGainPlateau:
    """Stop when feedback has (nearly) stopped moving the belief state.

    Fires when each of the last ``patience`` rounds gained less than
    ``min_gain_nats`` of knowledge — the autonomous analogue of
    "no projection shows anything notable any more".

    Attributes
    ----------
    min_gain_nats:
        Gain below this counts as a plateau round.
    patience:
        Consecutive plateau rounds required before stopping.
    """

    min_gain_nats: float = 1e-3
    patience: int = 2

    def should_stop(self, state: RunState) -> str | None:
        curve = state.knowledge_curve
        if len(curve) < self.patience + 1:
            return None
        recent = curve[-(self.patience + 1):]
        gains = [after - before for before, after in zip(recent, recent[1:])]
        if all(gain < self.min_gain_nats for gain in gains):
            return (
                f"knowledge-plateau (< {self.min_gain_nats:g} nats "
                f"for {self.patience} rounds)"
            )
        return None


@dataclass(frozen=True)
class WallClockBudget:
    """Stop once the run has used its wall-clock budget (seconds)."""

    max_seconds: float

    def should_stop(self, state: RunState) -> str | None:
        elapsed = state.clock() - state.started_at
        if elapsed >= self.max_seconds:
            return f"wall-clock-budget ({self.max_seconds:g}s)"
        return None


def first_reason(rules: list[StoppingRule], state: RunState) -> str | None:
    """The first rule that wants to stop, in list order (None = continue)."""
    for rule in rules:
        reason = rule.should_stop(state)
        if reason is not None:
            return reason
    return None
