"""repro.explore — autonomous exploration policies, traces, and load generation.

Closes the paper's interactive loop without a human: an
:class:`~repro.explore.policies.ExplorationPolicy` plays the user —
looking at each most-informative view and answering with typed
:mod:`repro.feedback` objects — while the engine handles the
fit/observe/apply cycle, stopping rules, and record keeping.  One
subsystem, three layers:

``policies``  the policy vocabulary: ``surprise`` (cluster the rows the
              background finds most unlikely), ``objective-sweep``
              (confirm/deny the view of every registered objective),
              ``random-walk`` (the baseline), plus the
              :class:`Observation` they see and a name registry
              (:func:`make_policy`).
``stopping``  pluggable stopping rules: round budget, knowledge-gain
              plateau (nats), wall-clock budget.
``engine``    the closed loop itself, over a :class:`SessionDriver` —
              :class:`InProcessDriver` (an
              :class:`~repro.core.session.ExplorationSession`) or
              :class:`RemoteDriver` (a ``/v1`` service session), same
              policy code either way.
``trace``     deterministic JSONL run traces: save, load, and replay
              bit-for-bit (in-process or against a live server).
``loadgen``   the service workload generator: N concurrent policy-driven
              sessions against a running server, reporting per-route
              latency percentiles, throughput and solve-cache hit rate
              (``BENCH_loadgen.json``).

Quick start
-----------
>>> from repro.datasets import three_d_clusters
>>> from repro.explore import InProcessDriver, make_policy, run_exploration
>>> from repro.core.session import ExplorationSession
>>> bundle = three_d_clusters(seed=0)
>>> session = ExplorationSession(bundle.data, standardize=True, seed=0)
>>> result = run_exploration(
...     make_policy("surprise"), InProcessDriver(session), rounds=3, seed=0)
>>> curve = result.knowledge_curve()        # non-decreasing, in nats

Or from the command line: ``repro explore --policy surprise --dataset
three-d --rounds 5 --trace t.jsonl`` and ``repro loadgen --sessions 8``.
"""

from repro.explore.engine import (
    ExplorationResult,
    InProcessDriver,
    RemoteDriver,
    RoundRecord,
    SessionDriver,
    run_exploration,
)
from repro.explore.loadgen import (
    InstrumentedClient,
    LatencyRecorder,
    LoadGenConfig,
    LoadGenReport,
    capture_obs,
    format_report,
    run_loadgen,
    write_report,
)
from repro.explore.policies import (
    POLICIES,
    ExplorationPolicy,
    Observation,
    ObjectiveSweep,
    RandomWalk,
    SurpriseGreedy,
    UnknownPolicyError,
    make_policy,
    policy_names,
)
from repro.explore.stopping import (
    KnowledgeGainPlateau,
    RoundBudget,
    RunState,
    StoppingRule,
    WallClockBudget,
)
from repro.explore.trace import (
    ReplayResult,
    Trace,
    in_process_driver_for,
    load_trace,
    remote_driver_for,
    replay_trace,
    save_trace,
)

__all__ = [
    "POLICIES",
    "ExplorationPolicy",
    "ExplorationResult",
    "InProcessDriver",
    "InstrumentedClient",
    "KnowledgeGainPlateau",
    "LatencyRecorder",
    "LoadGenConfig",
    "LoadGenReport",
    "Observation",
    "ObjectiveSweep",
    "RandomWalk",
    "RemoteDriver",
    "ReplayResult",
    "RoundBudget",
    "RoundRecord",
    "RunState",
    "SessionDriver",
    "StoppingRule",
    "SurpriseGreedy",
    "Trace",
    "UnknownPolicyError",
    "WallClockBudget",
    "capture_obs",
    "format_report",
    "in_process_driver_for",
    "load_trace",
    "make_policy",
    "policy_names",
    "remote_driver_for",
    "replay_trace",
    "run_exploration",
    "run_loadgen",
    "save_trace",
    "write_report",
]
