"""`repro bench`: measured proof of the vectorized kernels.

Six suites; the first two pit the batched implementations against the
preserved pre-vectorization loops, the rest gate infrastructure
overhead ratios:

* ``core_solver`` — OPTIM sweep, whitening, sampling, one-shot INIT,
  equivalence building vs :mod:`repro.core.reference`, on a many-class
  workload (margin-style constraints across every class plus one block
  constraint pair per class, the paper's interactive shape).  Writes
  ``BENCH_core_solver.json``.
* ``projection`` — batched/multi-restart FastICA and the block-diagonal
  scatter GEMM vs :mod:`repro.projection.reference` and
  :func:`repro.core.grouping.apply_by_class_loop`, on a non-gaussian
  cluster mixture.  Writes ``BENCH_projection.json``.
* ``store`` — the durable tier: WAL append per backend x fsync policy,
  crash recovery, compaction, and the loadgen p99 view-latency overhead
  of serving with a durable store.  Writes ``BENCH_store.json``.
* ``obs`` — the observability tier: 100 Hz sampling-profiler overhead
  on the solver workload, time-series snapshot cost, and shard-snapshot
  merge throughput.  Writes ``BENCH_obs.json``.
* ``resilience`` — overload behavior under 4x the admission limit
  (accepted-request p99 vs the interactivity budget, shed fast path)
  plus deadline-check and circuit-breaker hot-path overhead.  Writes
  ``BENCH_resilience.json``.
* ``service`` — the sharded deployment: socket-RPC round-trip cost and
  the same concurrent session workload against a 1-worker vs N-worker
  process fleet (gates the multi/single wall-time ratio so sharding
  overhead, and on multi-core runners the parallel speedup, are both
  held).  Writes ``BENCH_service.json``.

With ``--check`` the vectorized timings are compared against the
committed ``benchmarks/baselines.json`` (suite-keyed sections) and the
run fails on a >tolerance regression (CI's ``bench-smoke`` job).

All timings are best-of-``repeats`` to damp scheduler jitter; speedups
are reference/vectorized on the same workload and sweep count.  The
whitening/sampling numbers are steady-state: repeated calls between fits
(the view-request pattern) hit the version-keyed decomposition cache,
while the reference loops re-eigendecompose every class every call.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.constraint import Constraint, ConstraintKind
from repro.core.equivalence import build_equivalence_classes
from repro.core.grouping import apply_by_class, apply_by_class_loop
from repro.core.parameters import ClassParameters
from repro.core.reference import (
    reference_build_equivalence_classes,
    reference_init_targets,
    reference_optim_sweeps,
    reference_sample_background,
    reference_whiten,
)
from repro.core.sampling import sample_background
from repro.core.solver import SolverOptions, init_targets, solve_maxent
from repro.core.whitening import whiten
from repro.projection.fastica import fit_fastica
from repro.projection.reference import reference_fit_fastica

#: Workload sizes.  ``quick`` keeps CI smoke runs in single-digit seconds;
#: ``full`` doubles the class count and data size.
SIZES = {
    "quick": {"structural": 7, "d": 12, "n": 2048, "sweeps": 4, "repeats": 3},
    "full": {"structural": 8, "d": 12, "n": 4096, "sweeps": 6, "repeats": 5},
}

#: Projection-suite workload sizes.  ``iterations`` caps the fixed-point
#: loop so timings measure throughput, not data-dependent convergence.
PROJECTION_SIZES = {
    "quick": {"n": 1024, "d": 8, "restarts": 8, "iterations": 60,
              "scatter_classes": 96, "repeats": 3},
    "full": {"n": 2048, "d": 12, "restarts": 16, "iterations": 100,
             "scatter_classes": 256, "repeats": 5},
}


def many_class_workload(
    structural: int, d: int, n: int, seed: int = 0
) -> tuple[np.ndarray, list[Constraint]]:
    """A workload whose constraints each span many equivalence classes.

    ``2d`` margin-style constraints (linear + quadratic along random unit
    vectors) touch every row, and ``structural`` quadratic constraints
    each cover a random half of the rows.  The structural overlaps
    shatter the rows into up to ``2^structural`` equivalence classes, so
    *every* constraint step spans hundreds of classes — the regime where
    the batched Woodbury kernel replaces a per-class Python loop (and the
    regime Fig. 5's adversarial overlapping clusters live in).
    """
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d))
    all_rows = np.arange(n)

    def unit(v: np.ndarray) -> np.ndarray:
        return v / np.linalg.norm(v)

    constraints: list[Constraint] = []
    for axis in range(d):
        constraints.append(
            Constraint(
                ConstraintKind.LINEAR,
                all_rows,
                unit(rng.standard_normal(d)),
                label=f"margin-lin[{axis}]",
            )
        )
        constraints.append(
            Constraint(
                ConstraintKind.QUADRATIC,
                all_rows,
                unit(rng.standard_normal(d)),
                label=f"margin-quad[{axis}]",
            )
        )
    for s in range(structural):
        rows = np.sort(rng.choice(n, n // 2, replace=False))
        constraints.append(
            Constraint(
                ConstraintKind.QUADRATIC,
                rows,
                unit(rng.standard_normal(d)),
                label=f"half[{s}]",
            )
        )
    return data, constraints


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock over ``repeats`` calls of ``fn``."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def run_core_solver_suite(quick: bool = True, seed: int = 0) -> dict:
    """Time every vectorized kernel against its reference loop.

    Returns the ``BENCH_core_solver.json`` payload (see module docstring).
    """
    size = SIZES["quick" if quick else "full"]
    d = size["d"]
    sweeps, repeats = size["sweeps"], size["repeats"]
    data, constraints = many_class_workload(
        size["structural"], d, size["n"], seed=seed
    )
    classes = build_equivalence_classes(data.shape[0], constraints)

    # Sentinel negative tolerances force solve_maxent to run exactly
    # `sweeps` sweeps, matching the fixed work of the reference loop.
    forced = SolverOptions(
        lambda_tolerance=-1.0,
        drift_tolerance_factor=-1.0,
        time_cutoff=None,
        max_sweeps=sweeps,
    )

    def optim_vectorized() -> float:
        # Pure OPTIM: the report's sweep-loop time, classes prebuilt.
        fresh = ClassParameters.prior(classes.n_classes, d)
        _, _, report = solve_maxent(
            data, constraints, options=forced, params=fresh, classes=classes
        )
        return report.optim_seconds

    ref_targets, ref_anchors = reference_init_targets(data, constraints)

    def optim_reference() -> None:
        # Same fixed sweep count, targets precomputed outside the clock.
        reference_optim_sweeps(
            data, constraints, classes, sweeps, ref_targets, ref_anchors
        )

    params, _, _ = solve_maxent(data, constraints, options=forced)
    rng_seed = seed + 1

    timings = {
        "optim_sweep_vectorized_s": min(
            optim_vectorized() for _ in range(repeats)
        ),
        "optim_sweep_reference_s": _best_of(repeats, optim_reference),
        "whiten_vectorized_s": _best_of(
            repeats, lambda: whiten(data, params, classes)
        ),
        "whiten_reference_s": _best_of(
            repeats, lambda: reference_whiten(data, params, classes)
        ),
        "sample_vectorized_s": _best_of(
            repeats,
            lambda: sample_background(
                params, classes, rng=np.random.default_rng(rng_seed)
            ),
        ),
        "sample_reference_s": _best_of(
            repeats,
            lambda: reference_sample_background(
                params, classes, rng=np.random.default_rng(rng_seed)
            ),
        ),
        "init_vectorized_s": _best_of(
            repeats, lambda: init_targets(data, constraints)
        ),
        "init_reference_s": _best_of(
            repeats, lambda: reference_init_targets(data, constraints)
        ),
        "equivalence_vectorized_s": _best_of(
            repeats,
            lambda: build_equivalence_classes(data.shape[0], constraints),
        ),
        "equivalence_reference_s": _best_of(
            repeats,
            lambda: reference_build_equivalence_classes(
                data.shape[0], constraints
            ),
        ),
    }
    timings = {k: round(v, 6) for k, v in timings.items()}

    def speedup(name: str) -> float:
        vec = max(timings[f"{name}_vectorized_s"], 1e-9)
        return round(timings[f"{name}_reference_s"] / vec, 2)

    return {
        "suite": "core_solver",
        "mode": "quick" if quick else "full",
        "workload": {
            "n": int(data.shape[0]),
            "d": d,
            "classes": int(classes.n_classes),
            "constraints": len(constraints),
            "sweeps": sweeps,
            "repeats": repeats,
            "seed": seed,
        },
        "timings": timings,
        "speedups": {
            "optim_sweep": speedup("optim_sweep"),
            "whiten": speedup("whiten"),
            "sample": speedup("sample"),
            "init": speedup("init"),
            "equivalence": speedup("equivalence"),
        },
    }


def cluster_mixture_workload(n: int, d: int, seed: int = 0) -> np.ndarray:
    """A non-gaussian mixture for projection-pursuit benchmarks.

    Three well-separated gaussian blobs in the first two dimensions plus a
    heavy-tailed (Laplace) dimension — structure both the log-cosh and the
    kurtosis contrasts respond to, so fixed-point runs do real work
    instead of wandering on a gaussian plateau.
    """
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d))
    third = n // 3
    data[:third, 0] += 6.0
    data[third : 2 * third, 1] += 6.0
    if d >= 3:
        data[:, 2] = rng.laplace(0.0, 1.0, n)
    return data


def balanced_partition(n: int, c_count: int, seed: int = 0):
    """A synthetic near-balanced row partition with ``c_count`` classes.

    Random class assignment (covering every class) — the regime the
    block-diagonal scatter GEMM targets; returns an
    :class:`~repro.core.equivalence.EquivalenceClasses`.
    """
    from repro.core.equivalence import EquivalenceClasses

    rng = np.random.default_rng(seed)
    class_of_row = np.concatenate(
        [np.arange(c_count), rng.integers(0, c_count, max(n - c_count, 0))]
    )[:n]
    rng.shuffle(class_of_row)
    return EquivalenceClasses(
        n_rows=n,
        class_of_row=class_of_row,
        class_counts=np.bincount(class_of_row, minlength=c_count),
        members=(),
        representative_rows=np.zeros(c_count, dtype=np.intp),
    )


def run_projection_suite(quick: bool = True, seed: int = 0) -> dict:
    """Time the batched projection kernels against the preserved loops.

    Three match-ups, each on identical inputs and a fixed iteration count
    (tolerance 0 disables early convergence so both sides do the same
    work):

    * ``fastica`` — one batched symmetric run vs the serial loop
      preserved in :mod:`repro.projection.reference`;
    * ``fastica_restarts`` — R initialisations as one stacked tensor
      iteration vs R serial ``reference_fit_fastica`` calls (the old
      restart pattern);
    * ``scatter`` — the block-diagonal GEMM vs the per-class matmul loop
      on a near-balanced C-class partition.

    Returns the ``BENCH_projection.json`` payload.
    """
    size = PROJECTION_SIZES["quick" if quick else "full"]
    n, d = size["n"], size["d"]
    restarts, iterations = size["restarts"], size["iterations"]
    repeats = size["repeats"]
    data = cluster_mixture_workload(n, d, seed=seed)
    ica_seed = seed + 1

    def batched_single() -> None:
        fit_fastica(
            data,
            rng=np.random.default_rng(ica_seed),
            max_iterations=iterations,
            tolerance=0.0,
        )

    def reference_single() -> None:
        reference_fit_fastica(
            data,
            rng=np.random.default_rng(ica_seed),
            max_iterations=iterations,
            tolerance=0.0,
        )

    def batched_restarts() -> None:
        fit_fastica(
            data,
            rng=np.random.default_rng(ica_seed),
            max_iterations=iterations,
            tolerance=0.0,
            n_restarts=restarts,
        )

    def reference_restarts() -> None:
        # The pre-batching restart pattern: R independent serial fits.
        rng = np.random.default_rng(ica_seed)
        for _ in range(restarts):
            reference_fit_fastica(
                data,
                rng=np.random.default_rng(int(rng.integers(0, 2**63))),
                max_iterations=iterations,
                tolerance=0.0,
            )

    classes = balanced_partition(n, size["scatter_classes"], seed=seed)
    rng = np.random.default_rng(seed + 2)
    matrices = rng.standard_normal((classes.n_classes, d, d))
    values = rng.standard_normal((n, d))

    timings = {
        "fastica_vectorized_s": _best_of(repeats, batched_single),
        "fastica_reference_s": _best_of(repeats, reference_single),
        "fastica_restarts_vectorized_s": _best_of(repeats, batched_restarts),
        "fastica_restarts_reference_s": _best_of(repeats, reference_restarts),
        "scatter_vectorized_s": _best_of(
            repeats, lambda: apply_by_class(values, classes, matrices)
        ),
        "scatter_reference_s": _best_of(
            repeats, lambda: apply_by_class_loop(values, classes, matrices)
        ),
    }
    timings = {k: round(v, 6) for k, v in timings.items()}

    def speedup(name: str) -> float:
        vec = max(timings[f"{name}_vectorized_s"], 1e-9)
        return round(timings[f"{name}_reference_s"] / vec, 2)

    return {
        "suite": "projection",
        "mode": "quick" if quick else "full",
        "workload": {
            "n": n,
            "d": d,
            "restarts": restarts,
            "iterations": iterations,
            "scatter_classes": int(classes.n_classes),
            "repeats": repeats,
            "seed": seed,
        },
        "timings": timings,
        "speedups": {
            "fastica": speedup("fastica"),
            "fastica_restarts": speedup("fastica_restarts"),
            "scatter": speedup("scatter"),
        },
    }


#: Store-suite workload sizes: WAL batches appended/recovered/compacted,
#: and the loadgen shape for the durability-overhead comparison.
STORE_SIZES = {
    "quick": {"batches": 48, "repeats": 3,
              "lg_sessions": 4, "lg_rounds": 3, "lg_runs": 2},
    "full": {"batches": 256, "repeats": 5,
             "lg_sessions": 8, "lg_rounds": 4, "lg_runs": 3},
}

#: Acceptance bound on durable-service overhead: with ``fsync=batch`` the
#: loadgen p99 view latency must stay within this factor of the no-store
#: baseline (the view path never touches the WAL, so the overhead is
#: lock/bookkeeping only).
DURABILITY_P99_BOUND = 1.2


def run_store_suite(quick: bool = True, seed: int = 0) -> dict:
    """Time the durable-store tier: append, recover, compact, overhead.

    Four measurements, written to ``BENCH_store.json``:

    * **append** — seconds to write-ahead-append B feedback batches, per
      backend (SQLite / JSONL) and fsync policy (``always``/``batch``/
      ``off``) — the per-request durability cost;
    * **checkpoint put** — B full-checkpoint rewrites through
      ``DirectoryStore.put`` (fsync'd), the pre-WAL durability pattern
      the log replaces;
    * **recover** — open a fresh store and replay a B-batch log tail
      through ``apply_many`` (crash-restart latency);
    * **compact** — fold that tail into a fresh checkpoint;
    * **durability overhead** — two identical loadgen runs against an
      in-process server, no store vs ``sqlite:`` with ``fsync=batch``;
      the ratio of p99 view latencies (best-of-``lg_runs`` per side to
      damp scheduler jitter) must stay under
      :data:`DURABILITY_P99_BOUND`.  The ratio is exported as the timing
      key ``view_p99_durability_ratio`` so the baselines file can gate it
      like any other metric.
    """
    import shutil
    import tempfile

    from repro.datasets import three_d_clusters
    from repro.feedback import feedback_from_dict
    from repro.service.manager import SessionManager
    from repro.service.store import DirectoryStore
    from repro.store import (
        CompactionPolicy,
        SQLiteStore,
        compact_offline,
        recover_session,
    )

    size = STORE_SIZES["quick" if quick else "full"]
    batches, repeats = size["batches"], size["repeats"]
    rng = np.random.default_rng(seed)
    bundle = three_d_clusters(seed=seed)
    data = bundle.data
    n = data.shape[0]
    items = [
        [{"kind": "cluster",
          "rows": sorted(int(r) for r in rng.choice(n, 8, replace=False)),
          "label": f"bench-{i}"}]
        for i in range(batches)
    ]
    root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    timings: dict[str, float] = {}
    try:
        # -- append: B write-ahead batches per backend x fsync policy ----
        def time_appends(make_store) -> float:
            best = np.inf
            for attempt in range(repeats):
                store = make_store(attempt)
                start = time.perf_counter()
                for batch in items:
                    store.append_feedback("bench", batch)
                best = min(best, time.perf_counter() - start)
            return best

        for policy in ("always", "batch", "off"):
            timings[f"append_sqlite_{policy}_s"] = time_appends(
                lambda a, p=policy: SQLiteStore(
                    root / f"append-{p}-{a}.db", fsync=p
                )
            )
        timings["append_jsonl_batch_s"] = time_appends(
            lambda a: _jsonl_log_store(root / f"append-jsonl-{a}", "batch")
        )

        # -- checkpoint put: the pre-WAL full-rewrite durability pattern -
        ckpt_store = DirectoryStore(root / "ckpt")
        ckpt_payload = {"session_id": "bench", "dataset": "three-d",
                        "wal_seq": 0, "session": {"items": items}}

        def checkpoint_puts() -> None:
            for _ in range(len(items)):
                ckpt_store.put("bench", ckpt_payload)

        timings["checkpoint_put_s"] = _best_of(repeats, checkpoint_puts)

        # -- recover + compact: a real session with a B-batch log tail ---
        db = root / "recover.db"
        setup = SessionManager(
            {"three-d": lambda: bundle},
            store=SQLiteStore(db, fsync="off"),
            compaction=CompactionPolicy(0),  # keep the whole tail unfolded
        )
        sid = setup.create("three-d", session_id="bench-recover")
        for batch in items:
            setup.apply_feedback(
                sid, [feedback_from_dict(b) for b in batch]
            )

        def recover() -> None:
            recover_session(
                SQLiteStore(db, fsync="off"), sid, data,
                standardize=False, seed=0,
            )

        timings["recover_replay_s"] = _best_of(repeats, recover)

        def compact() -> None:
            compact_offline(
                SQLiteStore(db, fsync="off"), sid, data,
                standardize=False, seed=0,
            )

        # First call does the real fold; later repeats are near-no-ops,
        # so time the first call only.
        timings["compact_fold_s"] = _best_of(1, compact)

        # -- durability overhead: loadgen p99 views, store vs no store ---
        durability = _durability_overhead(
            root, bundle, size, seed=seed
        )
        timings["view_p99_durability_ratio"] = durability["ratio"]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    timings = {k: round(v, 6) for k, v in timings.items()}
    return {
        "suite": "store",
        "mode": "quick" if quick else "full",
        "workload": {
            "batches": batches,
            "rows": int(n),
            "repeats": repeats,
            "loadgen_sessions": size["lg_sessions"],
            "loadgen_rounds": size["lg_rounds"],
            "loadgen_runs": size["lg_runs"],
            "seed": seed,
        },
        "timings": timings,
        "durability": durability,
    }


def _jsonl_log_store(root: Path, fsync: str):
    """A bare JSONL log exposing ``append_feedback`` for the bench loop."""
    from repro.store import JsonlWal

    wal = JsonlWal(Path(root) / "feedback.wal", fsync=fsync)

    class _Shim:
        @staticmethod
        def append_feedback(session_id, items, kind="feedback", ref=None):
            return wal.append(session_id, items, kind=kind, ref=ref)

    return _Shim()


def _durability_overhead(root: Path, bundle, size: dict, seed: int) -> dict:
    """p99 view latency, durable ``sqlite:`` (fsync=batch) vs no store.

    Runs the identical loadgen workload ``lg_runs`` times per side and
    keeps each side's best (minimum) p99 — the same jitter-damping as
    ``_best_of``; a shared warm-up run pays the import/solver warm-up
    cost before either side is on the clock.
    """
    from repro.explore import LoadGenConfig, run_loadgen
    from repro.service import start_background
    from repro.service.manager import SessionManager
    from repro.store import SQLiteStore

    def view_p99(store) -> float:
        manager = SessionManager({"three-d": lambda: bundle}, store=store)
        server = start_background(manager)
        try:
            report = run_loadgen(LoadGenConfig(
                url=server.base_url,
                sessions=size["lg_sessions"],
                workers=size["lg_sessions"],
                policies=("objective-sweep",),
                datasets=("three-d",),
                rounds=size["lg_rounds"],
                objective="pca",
                seed=seed,
            ))
        finally:
            server.stop()
        views = [
            stats for route, stats in report.routes.items()
            if route.endswith("/view")
        ]
        if not views:
            raise RuntimeError(
                f"loadgen recorded no view route: {sorted(report.routes)}"
            )
        return max(float(stats["p99_ms"]) for stats in views)

    view_p99(None)  # warm-up: numpy/solver first-call costs off the clock
    no_store_ms = min(view_p99(None) for _ in range(size["lg_runs"]))
    durable_ms = min(
        view_p99(SQLiteStore(root / f"loadgen-{run}.db", fsync="batch"))
        for run in range(size["lg_runs"])
    )
    ratio = durable_ms / max(no_store_ms, 1e-9)
    return {
        "view_p99_no_store_ms": round(no_store_ms, 3),
        "view_p99_sqlite_batch_ms": round(durable_ms, 3),
        "ratio": round(ratio, 4),
        "bound": DURABILITY_P99_BOUND,
        "within_bound": ratio <= DURABILITY_P99_BOUND,
    }


#: Acceptance bound on continuous-profiling overhead: with the sampling
#: stack profiler running at ~100 Hz the solver workload must stay within
#: this factor of its unprofiled wall clock (<10% regression).
PROFILER_OVERHEAD_BOUND = 1.10

#: Obs-suite workload sizes.  The solver workload is sized so the
#: profiled run collects a meaningful number of 100 Hz samples while the
#: quick mode stays in single-digit seconds.
OBS_SIZES = {
    "quick": {"structural": 6, "d": 12, "n": 2048, "sweeps": 8, "solves": 4,
              "repeats": 3, "merge_shards": 8, "history_samples": 50},
    "full": {"structural": 7, "d": 12, "n": 4096, "sweeps": 8, "solves": 4,
             "repeats": 5, "merge_shards": 16, "history_samples": 100},
}


def run_obs_suite(quick: bool = True, seed: int = 0) -> dict:
    """Time the observability tier: profiler overhead, history, merge.

    Three measurements, written to ``BENCH_obs.json``:

    * **profiler overhead** — the fixed-sweep solver workload, unprofiled
      vs with :class:`repro.obs.StackProfiler` sampling at ~100 Hz; the
      wall-clock ratio is exported as the timing key
      ``profiler_overhead_ratio`` (baselines gate it like any metric) and
      must stay under :data:`PROFILER_OVERHEAD_BOUND`;
    * **history sampling** — seconds to take N time-series snapshots of a
      populated :class:`~repro.obs.MetricsRegistry` (the recorder
      thread's per-tick cost);
    * **snapshot merge** — fold S shard snapshots into one aggregator
      registry via :meth:`~repro.obs.MetricsRegistry.merge`.
    """
    from repro.obs.metrics import (
        DEFAULT_LATENCY_BUCKETS,
        MetricsRegistry,
    )
    from repro.obs.profile import StackProfiler
    from repro.obs.timeseries import TimeSeriesRecorder

    size = OBS_SIZES["quick" if quick else "full"]
    repeats = size["repeats"]
    data, constraints = many_class_workload(
        size["structural"], size["d"], size["n"], seed=seed
    )
    # Sentinel negative tolerances force exactly `sweeps` sweeps so both
    # sides of the overhead ratio do identical work.
    forced = SolverOptions(
        lambda_tolerance=-1.0,
        drift_tolerance_factor=-1.0,
        time_cutoff=None,
        max_sweeps=size["sweeps"],
    )

    def solve() -> None:
        # Several back-to-back solves per timed call: long enough on the
        # clock (~100 ms+) that the 100 Hz sampler lands a stable number
        # of ticks and the overhead ratio is signal, not jitter.
        for _ in range(size["solves"]):
            solve_maxent(data, constraints, options=forced)

    solve()  # warm-up: first-call numpy/solver costs off the clock
    unprofiled_s = _best_of(repeats, solve)
    profiler = StackProfiler(interval=0.01)
    profiler.start()
    try:
        profiled_s = _best_of(repeats, solve)
    finally:
        profiler.stop()
    ratio = profiled_s / max(unprofiled_s, 1e-9)

    # -- history sampling: recorder-tick cost on a populated registry ----
    registry = MetricsRegistry()
    hist = registry.histogram(
        "repro_request_duration_seconds", "Request latency.",
        labelnames=("route", "status"), buckets=DEFAULT_LATENCY_BUCKETS,
    )
    counter = registry.counter(
        "repro_requests_total", "Requests.", labelnames=("route", "status")
    )
    rng = np.random.default_rng(seed)
    for route in ("GET /v1/sessions/{id}/view", "POST /v1/sessions"):
        for value in rng.uniform(0.001, 0.5, size=256):
            hist.labels(route=route, status="200").observe(float(value))
            counter.labels(route=route, status="200").inc()
    recorder = TimeSeriesRecorder(registry, interval=3600.0, capacity=4096)

    def take_samples() -> None:
        for _ in range(size["history_samples"]):
            recorder.sample()

    timings = {
        "solve_unprofiled_s": unprofiled_s,
        "solve_profiled_s": profiled_s,
        "profiler_overhead_ratio": ratio,
        "history_sample_s": _best_of(repeats, take_samples),
    }

    # -- snapshot merge: S shards folded into one aggregator ------------
    snapshots = [
        registry.to_snapshot(source=f"shard-{i}")
        for i in range(size["merge_shards"])
    ]

    def merge_shards() -> None:
        aggregate = MetricsRegistry()
        for snap in snapshots:
            aggregate.merge(snap)

    timings["snapshot_merge_s"] = _best_of(repeats, merge_shards)

    timings = {k: round(v, 6) for k, v in timings.items()}
    return {
        "suite": "obs",
        "mode": "quick" if quick else "full",
        "workload": {
            "structural": size["structural"],
            "d": size["d"],
            "n": size["n"],
            "sweeps": size["sweeps"],
            "solves": size["solves"],
            "repeats": repeats,
            "merge_shards": size["merge_shards"],
            "history_samples": size["history_samples"],
            "seed": seed,
        },
        "timings": timings,
        "profiling": {
            "solve_unprofiled_s": round(unprofiled_s, 6),
            "solve_profiled_s": round(profiled_s, 6),
            "ratio": round(ratio, 4),
            "bound": PROFILER_OVERHEAD_BOUND,
            "within_bound": ratio <= PROFILER_OVERHEAD_BOUND,
            "hz": round(1.0 / profiler.interval, 1),
            "samples": profiler.samples,
            "unique_stacks": len(profiler.stacks()),
        },
    }


#: Resilience-suite workload sizes.  ``limit`` is the admission cap L;
#: offered load is ``limit x load_factor`` concurrent workers issuing
#: back-to-back view requests.
RESILIENCE_SIZES = {
    "quick": {"limit": 4, "load_factor": 4, "requests": 40, "repeats": 3,
              "shed_calls": 500, "deadline_calls": 100_000,
              "breaker_cycles": 50_000},
    "full": {"limit": 4, "load_factor": 4, "requests": 120, "repeats": 3,
             "shed_calls": 1000, "deadline_calls": 200_000,
             "breaker_cycles": 100_000},
}


def run_resilience_suite(quick: bool = True, seed: int = 0) -> dict:
    """Time the resilience tier: overload behavior and hot-path overhead.

    Four measurements, written to ``BENCH_resilience.json``:

    * **overload p99** — an in-process server with admission cap L under
      ``load_factor`` x L offered load (concurrent workers, no client
      retries); the p99 latency of *accepted* view requests divided by
      the paper's 2 s interactivity budget is exported as
      ``overload_accepted_p99_interactivity_ratio`` — the baselines file
      gates that accepted requests stay interactive while the excess is
      shed, which is the whole point of admission control;
    * **shed fast path** — seconds to answer ``shed_calls`` dispatches
      against a saturated admission controller (the 503 rejection path
      must be orders cheaper than the work it refuses);
    * **deadline overhead** — ``deadline_calls`` ambient
      :func:`~repro.resilience.deadline.check_deadline` calls with no
      deadline set (the per-sweep solver cost when the feature is off);
    * **breaker cycle** — ``breaker_cycles`` closed-state
      acquire/record_success pairs (the per-request client cost).
    """
    from concurrent.futures import ThreadPoolExecutor
    from contextlib import ExitStack

    from repro.datasets import three_d_clusters
    from repro.obs.slo import INTERACTIVITY_BUDGET_SECONDS
    from repro.resilience import AdmissionController, CircuitBreaker
    from repro.resilience.deadline import check_deadline
    from repro.service import ServiceAPI, start_background
    from repro.service.client import ServiceClient, ServiceClientError
    from repro.service.manager import SessionManager

    size = RESILIENCE_SIZES["quick" if quick else "full"]
    limit = size["limit"]
    workers = limit * size["load_factor"]
    bundle = three_d_clusters(seed=seed)
    manager = SessionManager({"three-d": lambda: bundle})
    admission = AdmissionController(max_inflight=limit)
    api = ServiceAPI(manager, admission=admission)
    server = start_background(api)
    accepted: list[float] = []
    shed = 0
    try:
        control = ServiceClient(server.base_url)
        sid = control.create_session("three-d", seed=seed)
        control.view(sid)  # warm-up: solve + cache fill off the clock

        def drive(_: int) -> tuple[list[float], int]:
            # No retries and no breaker: offered load must stay constant
            # at 4xL, not collapse when the server starts shedding.
            client = ServiceClient(
                server.base_url, breaker=False, max_retries=0,
                connect_retries=3, retry_delay=0.0,
            )
            latencies: list[float] = []
            rejected = 0
            for _ in range(size["requests"]):
                started = time.perf_counter()
                try:
                    client.view(sid)
                except ServiceClientError as exc:
                    kind = (
                        exc.payload.get("kind")
                        if isinstance(exc.payload, dict) else None
                    )
                    if kind != "overloaded":
                        raise
                    rejected += 1
                    continue
                latencies.append(time.perf_counter() - started)
            return latencies, rejected

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for latencies, rejected in pool.map(drive, range(workers)):
                accepted.extend(latencies)
                shed += rejected

        # -- shed fast path: dispatch cost while saturated ---------------
        with ExitStack() as stack:
            for _ in range(limit):
                stack.enter_context(admission.admit())

            def shed_dispatches() -> None:
                for _ in range(size["shed_calls"]):
                    api.dispatch("GET", "/v1/datasets")

            shed_fast_path_s = _best_of(size["repeats"], shed_dispatches)
    finally:
        server.stop()

    if not accepted:
        raise RuntimeError(
            "overload run accepted zero requests; admission cap "
            f"{limit} shed all {shed} attempts"
        )
    accepted_p99_s = float(np.percentile(accepted, 99))
    ratio = accepted_p99_s / INTERACTIVITY_BUDGET_SECONDS

    def deadline_checks() -> None:
        for _ in range(size["deadline_calls"]):
            check_deadline()

    breaker = CircuitBreaker("bench")

    def breaker_cycle() -> None:
        for _ in range(size["breaker_cycles"]):
            breaker.acquire()
            breaker.record_success()

    timings = {
        "overload_accepted_p99_interactivity_ratio": ratio,
        "shed_fast_path_s": shed_fast_path_s,
        "deadline_check_overhead_s": _best_of(
            size["repeats"], deadline_checks
        ),
        "breaker_cycle_s": _best_of(size["repeats"], breaker_cycle),
    }
    timings = {k: round(v, 6) for k, v in timings.items()}
    offered = workers * size["requests"]
    return {
        "suite": "resilience",
        "mode": "quick" if quick else "full",
        "workload": {
            "max_inflight": limit,
            "load_factor": size["load_factor"],
            "workers": workers,
            "requests_per_worker": size["requests"],
            "shed_calls": size["shed_calls"],
            "deadline_calls": size["deadline_calls"],
            "breaker_cycles": size["breaker_cycles"],
            "repeats": size["repeats"],
            "seed": seed,
        },
        "timings": timings,
        "overload": {
            "offered": offered,
            "accepted": len(accepted),
            "shed": shed,
            "shed_rate": round(shed / offered, 4) if offered else 0.0,
            "accepted_p99_ms": round(accepted_p99_s * 1e3, 3),
            "interactivity_budget_s": INTERACTIVITY_BUDGET_SECONDS,
            "within_budget": accepted_p99_s <= INTERACTIVITY_BUDGET_SECONDS,
            "admission": admission.stats(),
        },
    }


def run_service_suite(quick: bool = False, seed: int = 0) -> dict:
    """Sharded-service suite: RPC hop cost and 1-vs-N worker throughput.

    Spawns real worker processes behind the sticky-session router and
    drives the same concurrent session workload (create, feedback, view,
    delete — each session with distinct constraints, so every session
    pays its own solves) against a single-worker and a multi-worker
    fleet.  Gated timings:

    * ``rpc_roundtrip_s`` — one ping over the length-prefixed socket
      RPC; the per-request tax of the process hop.
    * ``single_vs_multi_throughput_ratio`` — multi-worker wall time over
      single-worker wall time for the identical workload (equivalently
      single-worker throughput over multi-worker throughput).  Lower is
      better; on a 4-core runner the target is <= 0.4 (the >= 2.5x
      speedup of the roadmap), while the committed baseline only bounds
      the *overhead* so the gate also passes on starved 1-core CI
      machines where no parallel speedup is physically available.

    ``view_p99_s`` and the absolute throughputs ride along
    informationally.  Writes ``BENCH_service.json``.
    """
    import os
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.obs.slo import INTERACTIVITY_BUDGET_SECONDS
    from repro.service.router import ProcessWorker, Router, WorkerPool
    from repro.service.worker import WorkerConfig

    size = (
        {"sessions": 4, "rounds": 2, "pings": 100, "multi_workers": 2}
        if quick
        else {"sessions": 8, "rounds": 3, "pings": 500, "multi_workers": 4}
    )

    def run_fleet(n_workers: int) -> dict:
        sockdir = tempfile.mkdtemp(prefix="repro-bench-shard-")

        def factory(worker_id: int) -> ProcessWorker:
            return ProcessWorker(
                WorkerConfig(
                    worker_id=worker_id,
                    socket_path=os.path.join(
                        sockdir, f"worker-{worker_id}.sock"
                    ),
                )
            )

        pool = WorkerPool(n_workers, factory)
        router = Router(pool, shared_store=False)
        view_latencies: list[float] = []
        try:
            worker0 = pool.worker(0)
            started = time.perf_counter()
            for _ in range(size["pings"]):
                worker0.call({"op": "ping"})
            rpc_roundtrip = (time.perf_counter() - started) / size["pings"]

            def drive(i: int) -> list[float]:
                latencies: list[float] = []
                sid = f"bench-{seed}-{i}"
                status, payload = router.dispatch(
                    "POST",
                    "/v1/sessions",
                    body={
                        "dataset": "three-d",
                        "session_id": sid,
                        "seed": seed,
                    },
                )
                if status != 201:
                    raise RuntimeError(
                        f"session create failed: {status} {payload}"
                    )
                rows = list(range(3 * i, 3 * i + 6))
                for rnd in range(size["rounds"]):
                    status, payload = router.dispatch(
                        "POST",
                        f"/v1/sessions/{sid}/feedback",
                        body={
                            "feedback": [
                                {
                                    "kind": "cluster",
                                    "rows": [r + rnd for r in rows],
                                    "label": f"bench-{i}-{rnd}",
                                }
                            ]
                        },
                    )
                    if status != 200:
                        raise RuntimeError(
                            f"feedback failed: {status} {payload}"
                        )
                    t0 = time.perf_counter()
                    status, payload = router.dispatch(
                        "GET", f"/v1/sessions/{sid}/view"
                    )
                    if status != 200:
                        raise RuntimeError(f"view failed: {status} {payload}")
                    latencies.append(time.perf_counter() - t0)
                router.dispatch("DELETE", f"/v1/sessions/{sid}")
                return latencies

            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=size["sessions"]) as tp:
                for latencies in tp.map(drive, range(size["sessions"])):
                    view_latencies.extend(latencies)
            elapsed = time.perf_counter() - started
        finally:
            router.close()
        return {
            "elapsed_s": elapsed,
            "rpc_roundtrip_s": rpc_roundtrip,
            "view_p99_s": float(np.percentile(view_latencies, 99)),
            "throughput_sessions_per_s": size["sessions"] / elapsed,
        }

    single = run_fleet(1)
    multi = run_fleet(size["multi_workers"])
    ratio = multi["elapsed_s"] / single["elapsed_s"]

    timings = {
        "rpc_roundtrip_s": multi["rpc_roundtrip_s"],
        "single_vs_multi_throughput_ratio": ratio,
        "view_p99_s": multi["view_p99_s"],
    }
    timings = {k: round(v, 6) for k, v in timings.items()}
    return {
        "suite": "service",
        "mode": "quick" if quick else "full",
        "workload": {
            "sessions": size["sessions"],
            "rounds": size["rounds"],
            "pings": size["pings"],
            "multi_workers": size["multi_workers"],
            "dataset": "three-d",
            "seed": seed,
        },
        "timings": timings,
        "sharding": {
            "single_worker": {
                k: round(v, 6) for k, v in single.items()
            },
            "multi_worker": {k: round(v, 6) for k, v in multi.items()},
            "speedup": round(
                single["elapsed_s"] / multi["elapsed_s"], 4
            ),
            "interactivity_budget_s": INTERACTIVITY_BUDGET_SECONDS,
            "multi_view_p99_within_budget": (
                multi["view_p99_s"] <= INTERACTIVITY_BUDGET_SECONDS
            ),
        },
    }


#: Suite name -> runner; ``repro bench`` executes these in order.
SUITES = {
    "core_solver": run_core_solver_suite,
    "projection": run_projection_suite,
    "store": run_store_suite,
    "obs": run_obs_suite,
    "resilience": run_resilience_suite,
    "service": run_service_suite,
}


def write_payload(payload: dict, output_dir: str | Path = ".") -> Path:
    """Write the suite payload to ``BENCH_<suite>.json`` in ``output_dir``."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{payload['suite']}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def check_baselines(payload: dict, baselines_path: str | Path) -> list[str]:
    """Compare vectorized timings against committed baselines.

    The baselines file maps suite -> mode -> {timing key -> baseline
    seconds} plus a top-level ``tolerance`` factor (the pre-projection
    flat layout, mode -> budgets, is still read for older files).
    Returns a list of human-readable failures (empty = within budget).
    Every key listed in the budgets map is gated; reference-loop timings
    are deliberately left out of the baselines so they are never judged.
    The ``store`` suite also gates ``view_p99_durability_ratio`` — a
    ratio, not seconds — whose baseline x tolerance encodes the durable
    overhead bound.
    """
    spec = json.loads(Path(baselines_path).read_text())
    tolerance = float(spec.get("tolerance", 2.0))
    section = spec.get(payload.get("suite", ""))
    if section is None and payload.get("suite") == "core_solver":
        # Legacy flat files (mode -> budgets) only ever described the
        # core-solver suite; other suites must not be judged against
        # those budgets.
        section = spec
    budgets = section.get(payload["mode"]) if isinstance(section, dict) else None
    if budgets is None:
        # A gate that checks nothing must not report success.
        return [
            f"baselines file has no {payload.get('suite')}/{payload['mode']!r} "
            "section; the regression gate would check nothing"
        ]
    failures = []
    for key, baseline in budgets.items():
        measured = payload["timings"].get(key)
        if measured is None:
            failures.append(f"{key}: baseline present but metric missing")
            continue
        limit = float(baseline) * tolerance
        if measured > limit:
            failures.append(
                f"{key}: {measured:.4f}s exceeds {limit:.4f}s "
                f"(baseline {float(baseline):.4f}s x{tolerance:g})"
            )
    return failures


def format_payload(payload: dict) -> str:
    """Terminal rendering of a suite result (any suite's workload keys).

    Suites built around reference-vs-vectorized pairs render their
    speedup table; suites without one (``store``) render the raw timing
    keys, plus the durability section when present.
    """
    workload = ", ".join(
        f"{key}={value}" for key, value in payload["workload"].items()
    )
    lines = [f"suite {payload['suite']} ({payload['mode']}): {workload}"]
    speedups = payload.get("speedups")
    if speedups:
        width = max(len(name) for name in speedups)
        for name, factor in speedups.items():
            ref = payload["timings"][f"{name}_reference_s"]
            vec = payload["timings"][f"{name}_vectorized_s"]
            lines.append(
                f"  {name:<{width}} {ref:>9.4f}s -> {vec:>9.4f}s  ({factor:g}x)"
            )
    else:
        width = max(len(name) for name in payload["timings"])
        for name, value in payload["timings"].items():
            lines.append(f"  {name:<{width}} {value:>10.4f}")
    durability = payload.get("durability")
    if durability:
        lines.append(
            "  durability: view p99 "
            f"{durability['view_p99_no_store_ms']:.1f}ms (no store) -> "
            f"{durability['view_p99_sqlite_batch_ms']:.1f}ms "
            f"(sqlite, fsync=batch), ratio {durability['ratio']:g} "
            f"(bound {durability['bound']:g}, "
            f"{'OK' if durability['within_bound'] else 'EXCEEDED'})"
        )
    profiling = payload.get("profiling")
    if profiling:
        lines.append(
            "  profiling: solve "
            f"{profiling['solve_unprofiled_s']:.4f}s -> "
            f"{profiling['solve_profiled_s']:.4f}s @ {profiling['hz']:g} Hz "
            f"({profiling['samples']} samples), "
            f"ratio {profiling['ratio']:g} (bound {profiling['bound']:g}, "
            f"{'OK' if profiling['within_bound'] else 'EXCEEDED'})"
        )
    return "\n".join(lines)


def refresh_existing(output_dir: str | Path = ".") -> int:
    """Re-run the pytest benchmark smoke suites to refresh BENCH_*.json.

    Uses the service/loadgen modules CI already exercises.  The suite
    paths are resolved relative to the repository this package was
    imported from, so the command works from any working directory;
    returns the pytest exit code (or 2 when the benchmarks directory is
    not present, e.g. for a wheel install without the repo checkout).
    """
    import os
    import subprocess

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    suites = [
        bench_dir / "bench_service_throughput.py",
        bench_dir / "bench_explore_loadgen.py",
    ]
    missing = [str(p) for p in suites if not p.exists()]
    if missing:
        print(
            "cannot refresh pytest benchmarks; suite files not found: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    env = dict(os.environ)
    env["BENCH_OUTPUT_DIR"] = str(Path(output_dir).resolve())
    return subprocess.call(
        [sys.executable, "-m", "pytest", *map(str, suites), "-q"], env=env
    )
