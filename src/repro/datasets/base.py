"""Dataset container shared by all generators and loaders."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataShapeError


@dataclass(frozen=True)
class DatasetBundle:
    """A dataset plus its side information.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"x5"`` or ``"bnc-surrogate"``.
    data:
        The (n x d) data matrix.
    labels:
        Optional per-row class labels (length n, any hashable values).
        Labels are *never* fed to the algorithm — exactly as in the paper,
        they are only used retrospectively for evaluation (Jaccard indices).
    feature_names:
        Column names (length d); defaults to ``X1..Xd`` when omitted.
    metadata:
        Free-form extras recorded by the generator (cluster centres, seeds,
        coupling probabilities, ...).
    """

    name: str
    data: np.ndarray
    labels: np.ndarray | None = None
    feature_names: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=np.float64)
        if data.ndim != 2:
            raise DataShapeError(f"dataset must be 2-D, got shape {data.shape}")
        object.__setattr__(self, "data", data)
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.shape != (data.shape[0],):
                raise DataShapeError(
                    f"labels shape {labels.shape} does not match n={data.shape[0]}"
                )
            object.__setattr__(self, "labels", labels)
        if not self.feature_names:
            names = tuple(f"X{j + 1}" for j in range(data.shape[1]))
            object.__setattr__(self, "feature_names", names)
        elif len(self.feature_names) != data.shape[1]:
            raise DataShapeError(
                f"{len(self.feature_names)} feature names for d={data.shape[1]}"
            )

    @property
    def n_rows(self) -> int:
        """Number of rows n."""
        return int(self.data.shape[0])

    @property
    def dim(self) -> int:
        """Number of attributes d."""
        return int(self.data.shape[1])

    def rows_with_label(self, label) -> np.ndarray:
        """Indices of all rows carrying the given class label."""
        if self.labels is None:
            raise DataShapeError(f"dataset {self.name!r} has no labels")
        return np.flatnonzero(self.labels == label)

    def class_names(self) -> list:
        """Distinct labels in first-appearance order."""
        if self.labels is None:
            return []
        seen: dict = {}
        for item in self.labels:
            key = item.item() if hasattr(item, "item") else item
            if key not in seen:
                seen[key] = None
        return list(seen)
