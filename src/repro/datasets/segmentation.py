"""Surrogate for the UCI Image Segmentation use case (Sec. IV-C).

The real dataset (2310 samples, 19 region attributes, 7 classes of 330
samples each) is publicly available but this environment has no network, so
we synthesise a stand-in with the structure the Fig. 9 storyline relies on:

* heavy attribute-scale anisotropy and strong inter-attribute correlation —
  the reason the *initial* view shows a gross mismatch between data and the
  spherical background (fixed by a 1-cluster constraint);
* 'sky' completely separated (selection Jaccard 1.0 in the paper),
* 'grass' nearly separated (Jaccard 0.964),
* the remaining five classes ('brickface', 'cement', 'foliage', 'path',
  'window') forming one central overlapping blob (Jaccard ≈ 0.2 each when
  the blob is selected as a whole),
* a small number of genuine outliers that dominate the view once the three
  cluster constraints are in place.

Attribute semantics follow the real data loosely: region coordinates,
edge densities, and colour statistics (intensity / RGB means and
saturation-like channels), with 'sky' extreme in blue/intensity and 'grass'
extreme in green — this is what makes those classes separable while the
man-made-surface classes overlap.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle

CLASSES = ("brickface", "sky", "foliage", "cement", "window", "path", "grass")

#: Samples per class, as in the real dataset.
SAMPLES_PER_CLASS = 330

FEATURE_NAMES = (
    "region-centroid-col", "region-centroid-row", "region-pixel-count",
    "short-line-density-5", "short-line-density-2", "vedge-mean",
    "vedge-sd", "hedge-mean", "hedge-sd", "intensity-mean",
    "rawred-mean", "rawblue-mean", "rawgreen-mean", "exred-mean",
    "exblue-mean", "exgreen-mean", "value-mean", "saturation-mean",
    "hue-mean",
)

# Base class profiles in a latent, unit-scale space.  Columns: 19 features.
# 'sky' is pushed far out along intensity/blue channels; 'grass' along
# green; the other five sit close together around the origin.
_PROFILES = {
    # Sky and grass regions are chromatically uniform in the real data —
    # near-zero within-class colour variance — which is what makes them
    # crisply separable blobs once the global covariance is whitened out.
    "sky":       {"offset": 9.0, "dims": (9, 11, 14, 16), "minor": 0.22},
    "grass":     {"offset": 6.0, "dims": (12, 15, 18), "minor": 0.25},
    "brickface": {"offset": 0.6, "dims": (10, 13), "minor": 0.55},
    "cement":    {"offset": 0.5, "dims": (9, 16), "minor": 0.55},
    "foliage":   {"offset": 0.7, "dims": (12, 17), "minor": 0.6},
    "path":      {"offset": 0.5, "dims": (0, 1), "minor": 0.55},
    "window":    {"offset": 0.4, "dims": (5, 7), "minor": 0.55},
}

#: Per-feature physical scales: pixel coordinates live in [0, 255], counts
#: are constant-ish, colour channels span ~0-140.  This anisotropy is what
#: the initial SIDER view of Fig. 9a surfaces.
_FEATURE_SCALES = np.array(
    [70.0, 60.0, 0.5, 0.3, 0.5, 2.0, 3.0, 2.5, 4.0, 40.0,
     40.0, 45.0, 40.0, 10.0, 12.0, 15.0, 45.0, 0.3, 1.5]
)

_FEATURE_OFFSETS = np.array(
    [125.0, 120.0, 9.0, 0.1, 0.2, 2.0, 2.0, 2.5, 2.5, 40.0,
     35.0, 50.0, 35.0, 0.0, 0.0, 0.0, 50.0, 0.4, -1.0]
)

#: Fraction of rows replaced by outliers (extreme mixed profiles).  Kept
#: small and moderate in magnitude so the outliers surface only after the
#: main cluster structure has been constrained away (panel f), not before.
_OUTLIER_FRACTION = 0.004


def segmentation_surrogate(
    seed: int | None = 0,
    samples_per_class: int = SAMPLES_PER_CLASS,
) -> DatasetBundle:
    """Synthesise the Image-Segmentation-like dataset.

    Parameters
    ----------
    seed:
        RNG seed.
    samples_per_class:
        Rows per class (330 in the real data).

    Returns
    -------
    DatasetBundle
        Labels are class-name strings; ``metadata["outlier_rows"]`` lists
        the indices of injected outliers.
    """
    rng = np.random.default_rng(seed)
    d = len(FEATURE_NAMES)

    # Shared latent correlation: colour channels co-vary strongly (regions
    # bright in one channel are bright in all), which concentrates variance
    # on few directions.
    colour_dims = np.array([9, 10, 11, 12, 16])
    rows = []
    labels = []
    for name in CLASSES:
        profile = _PROFILES[name]
        centre = np.zeros(d)
        centre[list(profile["dims"])] = profile["offset"]
        block = profile["minor"] * rng.standard_normal((samples_per_class, d))
        # Common latent brightness factor across colour channels.  Sky and
        # grass regions have near-constant illumination, so their coupling
        # to the shared brightness factor is weak.
        brightness = rng.standard_normal((samples_per_class, 1))
        coupling = 0.4 if name in ("sky", "grass") else 1.5
        block[:, colour_dims] += coupling * brightness
        block += centre
        rows.append(block)
        labels.extend([name] * samples_per_class)

    latent = np.vstack(rows)
    label_arr = np.asarray(labels)

    # Map the unit-scale latent space onto physical feature scales.
    data = latent * _FEATURE_SCALES + _FEATURE_OFFSETS

    # Inject outliers: rare regions with contradictory channel values.
    # They are placed at a controlled *Mahalanobis* distance from the clean
    # data's global Gaussian: far enough (6-9 sigma) to be unexplainable by
    # any covariance constraint, but not so large in raw coordinates that
    # they dominate the first informative view before the main cluster
    # structure has been constrained away.
    n = data.shape[0]
    n_outliers = max(3, int(round(_OUTLIER_FRACTION * n)))
    outlier_rows = rng.choice(n, size=n_outliers, replace=False)
    clean_mean = data.mean(axis=0)
    clean_cov = np.cov(data, rowvar=False)
    cov_vals, cov_vecs = np.linalg.eigh(clean_cov)
    cov_root = (cov_vecs * np.sqrt(np.maximum(cov_vals, 0.0))) @ cov_vecs.T
    for i in outlier_rows:
        direction = rng.standard_normal(d)
        direction /= np.linalg.norm(direction)
        data[i] = clean_mean + cov_root @ direction * rng.uniform(6.0, 9.0)

    perm = rng.permutation(n)
    inverse = np.empty(n, dtype=np.intp)
    inverse[perm] = np.arange(n)
    return DatasetBundle(
        name="segmentation-surrogate",
        data=data[perm],
        labels=label_arr[perm],
        feature_names=FEATURE_NAMES,
        metadata={
            "seed": seed,
            "samples_per_class": samples_per_class,
            "outlier_rows": np.sort(inverse[outlier_rows]),
        },
    )
