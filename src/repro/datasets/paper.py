"""The paper's synthetic datasets, rebuilt from their textual descriptions.

Three datasets drive the method sections and the convergence study:

* :func:`three_d_clusters` — the 3-D, 150-point introduction example
  (Fig. 2): four clusters of which two partially overlap in the third
  dimension, so the first two principal components show only three.
* :func:`x5` — the 5-D, 1000-point running example ``X̂5`` (Fig. 3/4/6,
  Table I): four clusters in dimensions 1–3 arranged so that in every 2-D
  coordinate projection cluster A overlaps one of B, C, D; three clusters in
  dimensions 4–5, loosely coupled (75 %) to membership in B/C/D.
* :func:`adversarial_three_points` — the 3-point, 2-D dataset of Eq. 11
  with its two constraint sets C_A / C_B used to demonstrate slow
  convergence (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.constraint import Constraint
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import gaussian_clusters


def three_d_clusters(seed: int | None = 0, spread: float = 0.15) -> DatasetBundle:
    """The 3-D introduction dataset of Fig. 2.

    150 points: two clusters of 50 and two of 25.  The two 25-point clusters
    share their location in dimensions 1–2 and separate only along the third
    dimension (partially overlapping there), so a PCA view of dimensions 1–2
    shows three blobs of 50 points each.

    Parameters
    ----------
    seed:
        RNG seed.
    spread:
        Within-cluster standard deviation.

    Returns
    -------
    DatasetBundle
        Labels 0/1 are the two big clusters, 2/3 the overlapping pair.
    """
    # The arrangement is deliberately asymmetric: a symmetric triangle of
    # clusters leaves every in-plane direction with unit variance after
    # standardisation, which would starve the PCA view score of signal.
    centroids = np.array(
        [
            [0.0, 0.0, 0.0],    # big cluster 0
            [2.0, 0.0, 0.0],    # big cluster 1
            [0.2, 2.2, -0.25],  # small cluster 2 (lower in X3)
            [0.2, 2.2, 0.25],   # small cluster 3 (higher in X3, overlaps 2)
        ]
    )
    bundle = gaussian_clusters(
        centroids,
        sizes=[50, 50, 25, 25],
        spreads=spread,
        seed=seed,
        name="three-d-clusters",
    )
    bundle.metadata["description"] = (
        "Fig. 2 dataset: 4 clusters, two of which overlap in X3 only"
    )
    return bundle


def x5(
    n: int = 1000,
    seed: int | None = 0,
    spread123: float = 0.2,
    spread45: float = 0.2,
    coupling: float = 0.75,
) -> DatasetBundle:
    """The running example ``X̂5``: 5-D data with two coupled groupings.

    Construction (Sec. II-A, Fig. 3):

    * Dimensions 1–3 hold four clusters A, B, C, D.  B, C, D sit at the
      cube corners ``(0,1,1)``, ``(1,0,1)``, ``(1,1,0)`` and A at
      ``(1,1,1)``, so in each 2-D coordinate projection of dims 1–3, A
      coincides with exactly one of B/C/D — no axis-aligned pairplot panel
      can separate all four.
    * Dimensions 4–5 hold three clusters E, F, G.  A point from B/C/D joins
      E or F (equal odds) with probability ``coupling`` and G otherwise;
      points from A always join G.

    Returns
    -------
    DatasetBundle
        ``labels`` carries the A–D grouping; ``metadata["labels45"]`` the
        E–G grouping; ``metadata["cluster123"]``/``metadata["cluster45"]``
        the integer ids.
    """
    rng = np.random.default_rng(seed)
    centres123 = {
        "A": np.array([1.0, 1.0, 1.0]),
        "B": np.array([0.0, 1.0, 1.0]),
        "C": np.array([1.0, 0.0, 1.0]),
        "D": np.array([1.0, 1.0, 0.0]),
    }
    centres45 = {
        "E": np.array([0.0, 0.0]),
        "F": np.array([1.2, 0.0]),
        "G": np.array([0.6, 1.2]),
    }
    names123 = list(centres123)
    sizes = [n // 4 + (1 if c < n % 4 else 0) for c in range(4)]

    rows = []
    labels123 = []
    labels45 = []
    for name, size in zip(names123, sizes):
        base = centres123[name]
        block123 = base + spread123 * rng.standard_normal((size, 3))
        for point123 in block123:
            if name == "A":
                group45 = "G"
            elif rng.random() < coupling:
                group45 = "E" if rng.random() < 0.5 else "F"
            else:
                group45 = "G"
            point45 = centres45[group45] + spread45 * rng.standard_normal(2)
            rows.append(np.concatenate([point123, point45]))
            labels123.append(name)
            labels45.append(group45)

    data = np.asarray(rows)
    labels123_arr = np.asarray(labels123)
    labels45_arr = np.asarray(labels45)
    perm = rng.permutation(n)
    bundle = DatasetBundle(
        name="x5",
        data=data[perm],
        labels=labels123_arr[perm],
        metadata={
            "labels45": labels45_arr[perm],
            "centres123": centres123,
            "centres45": centres45,
            "coupling": coupling,
            "seed": seed,
        },
    )
    return bundle


def adversarial_three_points() -> DatasetBundle:
    """The 3-point, 2-D adversarial dataset of Eq. 11 (Fig. 5)."""
    data = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
    return DatasetBundle(
        name="adversarial-three-points",
        data=data,
        metadata={"description": "Eq. 11: slow-convergence toy example"},
    )


def adversarial_constraints_case_a(data: np.ndarray) -> list[Constraint]:
    """Constraint set C_A: one cluster constraint on rows {0, 2}.

    The paper writes C_A as axis-aligned linear+quadratic constraints on
    rows 1 and 3 (1-based) along e1 and e2; since those rows' SVD axes are
    axis-aligned this equals a cluster constraint on the pair.  We build the
    explicit axis-aligned form to match the paper exactly.
    """
    return _axis_pair_constraints(data, rows=(0, 2), label="case-a")


def adversarial_constraints_case_b(data: np.ndarray) -> list[Constraint]:
    """Constraint set C_B: C_A plus the overlapping pair {1, 2}.

    The overlap through row 2 combined with near-zero variances makes
    coordinate ascent converge only as (Sigma_1)_11 ∝ 1/tau (Fig. 5b).
    """
    return adversarial_constraints_case_a(data) + _axis_pair_constraints(
        data, rows=(1, 2), label="case-b-extra"
    )


def _axis_pair_constraints(
    data: np.ndarray, rows: tuple[int, int], label: str
) -> list[Constraint]:
    """Linear+quadratic constraints along e1 and e2 for a row pair."""
    from repro.core.constraint import ConstraintKind

    idx = np.asarray(rows, dtype=np.intp)
    out: list[Constraint] = []
    for k in range(2):
        w = np.zeros(2)
        w[k] = 1.0
        out.append(
            Constraint(ConstraintKind.LINEAR, idx, w, label=f"{label}/e{k + 1}/lin")
        )
        out.append(
            Constraint(
                ConstraintKind.QUADRATIC, idx, w, label=f"{label}/e{k + 1}/quad"
            )
        )
    return out
