"""Workload generator for the runtime experiment (Table II).

The paper parametrises datasets by the number of points (n), dimensionality
(d) and the number of clusters (k): k centroids are sampled at random and
points allocated around them.  Column (margin) constraints are added for
every dataset, plus cluster constraints for each of the k clusters when
k > 1 — 2d + 2dk primitive constraints in total.
"""

from __future__ import annotations

import numpy as np

from repro.core.builders import cluster_constraint, margin_constraints
from repro.core.constraint import Constraint
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import random_centroid_clusters


def runtime_dataset(
    n: int, d: int, k: int, seed: int | None = 0
) -> DatasetBundle:
    """One runtime-experiment dataset: k random-centroid Gaussian clusters."""
    return random_centroid_clusters(
        n=n, d=d, k=k, centroid_scale=4.0, spread=1.0, seed=seed,
        name=f"runtime(n={n},d={d},k={k})",
    )


def runtime_constraints(bundle: DatasetBundle) -> list[Constraint]:
    """The Table II constraint set for a runtime dataset.

    Margin constraints (2d) always; cluster constraints (2d per cluster)
    for each generated cluster when k > 1, using the true generator labels
    as the selections — mimicking a user who marks every cluster.
    """
    constraints = margin_constraints(bundle.data)
    k = len(bundle.metadata.get("sizes", ())) or (
        len(np.unique(bundle.labels)) if bundle.labels is not None else 1
    )
    if k > 1 and bundle.labels is not None:
        for c in np.unique(bundle.labels):
            rows = bundle.rows_with_label(c)
            constraints.extend(
                cluster_constraint(bundle.data, rows, label=f"cluster[{c}]")
            )
    return constraints
