"""Synthetic flow-cytometry dataset: the paper's forward-looking use case.

The conclusions name computational flow cytometry as a concrete target
application and report that "initial experiments with samples up to tens
of thousands rows from flow-cytometry data has shown the computations in
SIDER to scale up well and the projections to reveal structure in the
data" (citing Saeys et al. 2016).  Real cytometry data (FCS files) is not
bundled here, so this module synthesises a realistic stand-in:

* each *event* (row) is a cell measured on fluorescence/scatter channels;
* cell *populations* (lymphocytes, monocytes, ...) are log-normal-ish
  blobs in channel space with population-specific marker expression;
* raw intensities span decades, so the standard arcsinh (asinh) cofactor
  transform of cytometry pipelines is applied;
* rare populations (~1 %) exist — exactly the structure an iterative
  exploration should surface after the dominant populations are marked.

The matching benchmark (``bench_cytometry_scaling.py``) verifies the
conclusion's scalability claim: the OPTIM phase is flat in the number of
events and the whole loop stays interactive at tens of thousands of rows.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle

CHANNELS = (
    "FSC-A",      # forward scatter: cell size
    "SSC-A",      # side scatter: granularity
    "CD3",        # T cells
    "CD19",       # B cells
    "CD56",       # NK cells
    "CD14",       # monocytes
    "CD4",        # helper T subset
    "CD8",        # cytotoxic T subset
)

#: Population fractions and mean marker expression (log10 intensity units)
#: per channel, loosely following a peripheral-blood immunophenotyping
#: panel.  Only the *relative* geometry matters for the reproduction.
POPULATIONS = {
    "t-helper":   {"fraction": 0.32, "mean": (2.0, 1.2, 3.2, 0.5, 0.6, 0.5, 3.0, 0.7)},
    "t-cytotoxic": {"fraction": 0.18, "mean": (2.0, 1.2, 3.2, 0.5, 0.6, 0.5, 0.7, 3.0)},
    "b-cells":    {"fraction": 0.12, "mean": (1.9, 1.1, 0.5, 3.1, 0.5, 0.5, 0.6, 0.6)},
    "nk-cells":   {"fraction": 0.10, "mean": (2.0, 1.3, 0.6, 0.5, 3.0, 0.5, 0.6, 1.5)},
    "monocytes":  {"fraction": 0.20, "mean": (2.6, 2.2, 0.6, 0.5, 0.6, 3.2, 1.0, 0.6)},
    "debris":     {"fraction": 0.07, "mean": (1.0, 0.8, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4)},
    # The planted rare population is CD3/CD56 double-bright: brighter on
    # both markers than any dominant population, so it occupies a corner
    # of channel space nothing else reaches.
    "nkt-rare":   {"fraction": 0.01, "mean": (2.1, 1.3, 4.1, 0.5, 4.0, 0.5, 0.8, 1.6)},
}

#: arcsinh cofactor conventionally used for cytometry fluorescence.
ASINH_COFACTOR = 150.0


def cytometry_surrogate(
    n_events: int = 20000,
    seed: int | None = 0,
    transform: bool = True,
) -> DatasetBundle:
    """Synthesise a flow-cytometry-like event matrix.

    Parameters
    ----------
    n_events:
        Number of cells (rows).  Tens of thousands is the regime the
        paper's conclusion mentions.
    seed:
        RNG seed.
    transform:
        Apply the standard ``asinh(x / cofactor)`` transform (True) or
        return raw linear intensities (False).

    Returns
    -------
    DatasetBundle
        Labels are population names; ``metadata["rare_population"]`` names
        the ~1 % population planted for discovery.
    """
    rng = np.random.default_rng(seed)
    names = list(POPULATIONS)
    fractions = np.array([POPULATIONS[p]["fraction"] for p in names])
    fractions = fractions / fractions.sum()
    counts = rng.multinomial(n_events, fractions)

    blocks = []
    labels = []
    for name, count in zip(names, counts):
        mean_log10 = np.asarray(POPULATIONS[name]["mean"])
        # Log-normal intensities: biological CVs are large and channel
        # noise is multiplicative.
        log_intensity = mean_log10 + 0.18 * rng.standard_normal((count, len(CHANNELS)))
        intensity = 10.0**log_intensity
        # Additive electronic noise floor.
        intensity += rng.normal(0.0, 8.0, intensity.shape)
        blocks.append(intensity)
        labels.extend([name] * count)

    data = np.vstack(blocks)
    label_arr = np.asarray(labels)
    perm = rng.permutation(data.shape[0])
    data = data[perm]
    label_arr = label_arr[perm]

    if transform:
        data = np.arcsinh(data / ASINH_COFACTOR)

    return DatasetBundle(
        name="cytometry-surrogate",
        data=data,
        labels=label_arr,
        feature_names=CHANNELS,
        metadata={
            "seed": seed,
            "transform": "asinh" if transform else "linear",
            "cofactor": ASINH_COFACTOR,
            "rare_population": "nkt-rare",
            "population_counts": {
                name: int(c) for name, c in zip(names, counts)
            },
        },
    )
