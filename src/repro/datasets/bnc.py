"""Surrogate for the British National Corpus use case (Sec. IV-B).

The paper's preprocessing of the BNC yields word counts of the 100 most
frequent words over the first 2000 words of each of 1335 texts drawn from
four main genres ('prose fiction', 'transcribed conversations', 'broadsheet
newspaper', 'academic prose').  The BNC itself is licensed and cannot be
bundled, so this module synthesises a corpus with the same statistical
topology:

* a Zipf-like shared base distribution over a 100-word vocabulary,
* per-genre multiplicative boosts on genre-characteristic word groups
  (speech markers for conversations, narrative/pronoun words for fiction,
  formal/nominal words for academic prose and news),
* multinomial sampling of 2000 tokens per document.

Calibration target (what the use case needs): the dominant variance
direction separates 'transcribed conversations' sharply from everything
else (the paper's first selection has Jaccard 0.928 to that class), the
second round separates academic prose + broadsheet newspaper from prose
fiction, after which the constrained background explains the data well.
Spoken language genuinely is this far from written genres in function-word
statistics, which is why the surrogate reproduces the paper's storyline.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle

GENRES = (
    "prose fiction",
    "transcribed conversations",
    "broadsheet newspaper",
    "academic prose",
)

#: Documents per genre; totals 1335 like the paper's corpus.
GENRE_SIZES = {
    "prose fiction": 476,
    "transcribed conversations": 153,
    "broadsheet newspaper": 418,
    "academic prose": 288,
}

#: Vocabulary size (the "100 most frequent words").
VOCABULARY_SIZE = 100

#: Tokens sampled per document (the "first 2000 words").
TOKENS_PER_DOCUMENT = 2000

# Word-group index ranges used for genre boosts.  The surrogate vocabulary
# is anonymous (w000..w099); groups play the role of, e.g., first/second
# person pronouns, discourse markers, determiners, nominalisations.
_GROUPS = {
    "speech": slice(0, 15),        # 'I', 'you', 'yeah', 'know', ...
    "narrative": slice(15, 30),    # past-tense verbs, 3rd person pronouns
    "formal": slice(30, 45),       # 'of', 'which', nominal style
    "reporting": slice(45, 55),    # 'said', 'according', news style
    "common": slice(55, 100),      # genre-neutral filler
}

#: Multiplicative boosts per genre and word group.  Conversations are set
#: far from the written genres (strong speech boost, weak formal); academic
#: prose and broadsheet news share the formal register and form a combined
#: secondary cluster; prose fiction stays close to the corpus-wide base
#: distribution (it is the neutral bulk of the corpus, as in the real BNC),
#: which is what lets two cluster constraints explain the whole dataset in
#: the Fig. 8 storyline.
_BOOSTS = {
    "prose fiction": {"speech": 1.2, "narrative": 1.4, "formal": 0.9, "reporting": 0.9},
    "transcribed conversations": {
        "speech": 8.0, "narrative": 0.9, "formal": 0.35, "reporting": 0.4,
    },
    "broadsheet newspaper": {
        "speech": 0.45, "narrative": 0.9, "formal": 2.8, "reporting": 2.6,
    },
    "academic prose": {
        "speech": 0.3, "narrative": 0.7, "formal": 3.2, "reporting": 1.8,
    },
}

#: Per-genre document-level dispersion (sigma of the log-normal jitter).
#: Prose fiction is stylistically the most heterogeneous genre (novels,
#: short stories, dialogue-heavy and narrative-heavy texts), while academic
#: prose and news writing are editorially uniform — this is what makes the
#: formal genres a *tight* on-screen cluster that a user lassos as one
#: group, while fiction reads as the diffuse bulk of the corpus.
_JITTER = {
    "prose fiction": 0.55,
    "transcribed conversations": 0.30,
    "broadsheet newspaper": 0.22,
    "academic prose": 0.22,
}


def bnc_surrogate(
    seed: int | None = 0,
    n_documents: int | None = None,
    normalize: str = "hellinger",
) -> DatasetBundle:
    """Synthesise the BNC-like word-count dataset.

    Parameters
    ----------
    seed:
        RNG seed.
    n_documents:
        Override the corpus size; genre proportions are kept.  Defaults to
        the paper's 1335.
    normalize:
        ``"hellinger"`` (default) — square-root of relative frequencies, a
        standard variance-stabilising transform for count data;
        ``"relative"`` — plain relative frequencies; ``"counts"`` — raw
        counts.  The paper works on the count vector-space model; the
        Hellinger option simply stabilises scale so the spherical-prior
        exploration starts sensibly, and is what the Fig. 7/8 harness uses
        together with column standardisation.

    Returns
    -------
    DatasetBundle
        Labels are genre names; feature names ``w000..w099``.
    """
    rng = np.random.default_rng(seed)
    sizes = dict(GENRE_SIZES)
    if n_documents is not None:
        total = sum(sizes.values())
        sizes = {
            g: max(1, round(n_documents * s / total)) for g, s in sizes.items()
        }

    # Zipf-like base frequencies over the vocabulary.
    ranks = np.arange(1, VOCABULARY_SIZE + 1, dtype=np.float64)
    base = 1.0 / ranks
    base /= base.sum()

    rows = []
    labels = []
    for genre in GENRES:
        boost = np.ones(VOCABULARY_SIZE)
        for group, factor in _BOOSTS[genre].items():
            boost[_GROUPS[group]] *= factor
        genre_freq = base * boost
        genre_freq /= genre_freq.sum()
        for _ in range(sizes[genre]):
            # Per-document topical jitter: documents of one genre are not
            # identical multinomials (log-normal perturbation of the genre
            # profile, like document-level topic variation).  The jitter
            # scale is genre-specific; see _JITTER above.
            jitter = np.exp(_JITTER[genre] * rng.standard_normal(VOCABULARY_SIZE))
            doc_freq = genre_freq * jitter
            doc_freq /= doc_freq.sum()
            counts = rng.multinomial(TOKENS_PER_DOCUMENT, doc_freq)
            rows.append(counts)
            labels.append(genre)

    counts = np.asarray(rows, dtype=np.float64)
    perm = rng.permutation(counts.shape[0])
    counts = counts[perm]
    label_arr = np.asarray(labels)[perm]

    if normalize == "hellinger":
        data = np.sqrt(counts / TOKENS_PER_DOCUMENT)
    elif normalize == "relative":
        data = counts / TOKENS_PER_DOCUMENT
    elif normalize == "counts":
        data = counts
    else:
        raise ValueError(f"unknown normalize mode {normalize!r}")

    return DatasetBundle(
        name="bnc-surrogate",
        data=data,
        labels=label_arr,
        feature_names=tuple(f"w{j:03d}" for j in range(VOCABULARY_SIZE)),
        metadata={
            "seed": seed,
            "sizes": sizes,
            "normalize": normalize,
            "tokens_per_document": TOKENS_PER_DOCUMENT,
        },
    )
