"""Downsampling utilities for interactive-scale exploration.

Sec. IV of the paper: interactive systems work with on the order of
thousands of points — "if there are more data points it often makes sense
to downsample the data first".  These helpers downsample a
:class:`~repro.datasets.base.DatasetBundle` while keeping the side
information (labels, metadata) consistent, and can map selections made on
the sample back to the full data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.errors import DataShapeError


def downsample(
    bundle: DatasetBundle,
    n_rows: int,
    rng: np.random.Generator | None = None,
    stratify: bool = False,
) -> DatasetBundle:
    """Randomly subsample a dataset bundle to ``n_rows`` rows.

    Parameters
    ----------
    bundle:
        The dataset to downsample.
    n_rows:
        Target number of rows (must not exceed the bundle's size).
    rng:
        Randomness source; defaults to a fresh default generator.
    stratify:
        If True (requires labels), sample each class proportionally so
        small classes are not lost — important when the point of the
        exploration is finding exactly those classes.

    Returns
    -------
    DatasetBundle
        A new bundle named ``"<name>#<n_rows>"``.  Its metadata carries
        ``sample_rows``: the row indices into the original bundle, so
        selections on the sample can be mapped back with
        :func:`lift_selection`.
    """
    if n_rows <= 0 or n_rows > bundle.n_rows:
        raise DataShapeError(
            f"cannot downsample {bundle.n_rows} rows to {n_rows}"
        )
    rng = rng or np.random.default_rng()

    if stratify:
        if bundle.labels is None:
            raise DataShapeError("stratified downsampling requires labels")
        rows = _stratified_rows(bundle.labels, n_rows, rng)
    else:
        rows = np.sort(rng.choice(bundle.n_rows, size=n_rows, replace=False))

    metadata = dict(bundle.metadata)
    metadata["sample_rows"] = rows
    metadata["parent_name"] = bundle.name
    metadata["parent_n_rows"] = bundle.n_rows
    return DatasetBundle(
        name=f"{bundle.name}#{n_rows}",
        data=bundle.data[rows].copy(),
        labels=None if bundle.labels is None else bundle.labels[rows].copy(),
        feature_names=bundle.feature_names,
        metadata=metadata,
    )


def lift_selection(sample: DatasetBundle, rows) -> np.ndarray:
    """Map a selection on a downsampled bundle back to parent row indices."""
    if "sample_rows" not in sample.metadata:
        raise DataShapeError(
            f"bundle {sample.name!r} is not a downsample (no sample_rows)"
        )
    sample_rows = np.asarray(sample.metadata["sample_rows"], dtype=np.intp)
    idx = np.asarray(rows, dtype=np.intp)
    if idx.size and (idx.min() < 0 or idx.max() >= sample_rows.size):
        raise DataShapeError("selection outside the downsampled bundle")
    return sample_rows[idx]


def _stratified_rows(
    labels: np.ndarray, n_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Proportional per-class sampling (largest-remainder rounding)."""
    n = labels.shape[0]
    classes, counts = np.unique(labels, return_counts=True)
    raw = counts * (n_rows / n)
    quota = np.floor(raw).astype(int)
    remainder = n_rows - int(quota.sum())
    # Distribute leftover rows to the largest fractional parts; classes
    # rounded to zero get priority so no class disappears entirely.
    frac_order = np.argsort(raw - quota)[::-1]
    for j in range(remainder):
        quota[frac_order[j % classes.size]] += 1
    for c in np.flatnonzero(quota == 0):
        donors = np.flatnonzero(quota > 1)
        if donors.size:
            quota[donors[0]] -= 1
            quota[c] += 1

    picked = []
    for cls, k in zip(classes, quota):
        members = np.flatnonzero(labels == cls)
        k = min(k, members.size)
        picked.append(rng.choice(members, size=k, replace=False))
    return np.sort(np.concatenate(picked))
