"""Generic synthetic Gaussian-cluster generator.

All the paper's synthetic workloads are built on the same primitive: sample
cluster centroids, then scatter points around them.  This module provides
that primitive with explicit control over sizes, spreads and seeds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.errors import DataShapeError


def gaussian_clusters(
    centroids: np.ndarray,
    sizes: Sequence[int],
    spreads: Sequence[float] | float = 1.0,
    seed: int | None = 0,
    name: str = "gaussian-clusters",
    shuffle: bool = True,
) -> DatasetBundle:
    """Sample isotropic Gaussian clusters around given centroids.

    Parameters
    ----------
    centroids:
        (k, d) array of cluster centres.
    sizes:
        Points per cluster (length k).
    spreads:
        Per-cluster standard deviation(s); a scalar applies to all clusters.
    seed:
        RNG seed; ``None`` for non-deterministic output.
    name:
        Bundle name.
    shuffle:
        Shuffle rows so cluster membership is not a function of row order
        (labels follow the shuffle).

    Returns
    -------
    DatasetBundle
        With integer labels 0..k-1 identifying the generating cluster.
    """
    centres = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    k, d = centres.shape
    if len(sizes) != k:
        raise DataShapeError(f"{len(sizes)} sizes for {k} centroids")
    if np.isscalar(spreads):
        spread_arr = np.full(k, float(spreads))
    else:
        spread_arr = np.asarray(spreads, dtype=np.float64)
        if spread_arr.shape != (k,):
            raise DataShapeError(f"spreads shape {spread_arr.shape} != ({k},)")

    rng = np.random.default_rng(seed)
    blocks = []
    labels = []
    for c in range(k):
        blocks.append(centres[c] + spread_arr[c] * rng.standard_normal((sizes[c], d)))
        labels.extend([c] * sizes[c])
    data = np.vstack(blocks)
    label_arr = np.asarray(labels)
    if shuffle:
        perm = rng.permutation(data.shape[0])
        data = data[perm]
        label_arr = label_arr[perm]
    return DatasetBundle(
        name=name,
        data=data,
        labels=label_arr,
        metadata={
            "centroids": centres,
            "sizes": tuple(int(s) for s in sizes),
            "spreads": spread_arr,
            "seed": seed,
        },
    )


def random_centroid_clusters(
    n: int,
    d: int,
    k: int,
    centroid_scale: float = 4.0,
    spread: float = 1.0,
    seed: int | None = 0,
    name: str = "random-clusters",
) -> DatasetBundle:
    """Clusters around k random centroids — the Table II runtime workload.

    Centroids are drawn from ``N(0, centroid_scale^2 I)`` and points split
    as evenly as possible across clusters (remainders to the first ones),
    mirroring "first randomly sampling k cluster centroids and then
    allocating data points around each of the centroids" (Sec. IV-A).
    """
    if n < k:
        raise DataShapeError(f"need n >= k, got n={n}, k={k}")
    rng = np.random.default_rng(seed)
    centres = centroid_scale * rng.standard_normal((k, d))
    base = n // k
    sizes = [base + (1 if c < n % k else 0) for c in range(k)]
    # Derive a child seed so the point noise differs from the centroid draw
    # but the whole dataset is still reproducible from `seed`.
    child_seed = None if seed is None else seed + 1
    return gaussian_clusters(
        centres, sizes, spreads=spread, seed=child_seed, name=name, shuffle=True
    )
