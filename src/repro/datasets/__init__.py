"""Datasets: the paper's synthetic data and surrogates for its real data."""

from repro.datasets.base import DatasetBundle
from repro.datasets.bnc import GENRES, bnc_surrogate
from repro.datasets.cytometry import CHANNELS, POPULATIONS, cytometry_surrogate
from repro.datasets.downsample import downsample, lift_selection
from repro.datasets.paper import (
    adversarial_constraints_case_a,
    adversarial_constraints_case_b,
    adversarial_three_points,
    three_d_clusters,
    x5,
)
from repro.datasets.runtime import runtime_constraints, runtime_dataset
from repro.datasets.segmentation import CLASSES, segmentation_surrogate
from repro.datasets.synthetic import gaussian_clusters, random_centroid_clusters

__all__ = [
    "DatasetBundle",
    "gaussian_clusters",
    "random_centroid_clusters",
    "three_d_clusters",
    "x5",
    "adversarial_three_points",
    "adversarial_constraints_case_a",
    "adversarial_constraints_case_b",
    "runtime_dataset",
    "runtime_constraints",
    "bnc_surrogate",
    "GENRES",
    "segmentation_surrogate",
    "CLASSES",
    "cytometry_surrogate",
    "CHANNELS",
    "POPULATIONS",
    "downsample",
    "lift_selection",
]
