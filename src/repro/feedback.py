"""Typed feedback vocabulary: user knowledge as first-class objects.

The paper's interaction channel is "the user tells the system what they
now know"; the reproduction previously exposed that channel as five
parallel imperative methods.  This module reifies each kind of knowledge
as a small frozen dataclass that can be constructed in user code, sent
over the wire (``to_dict`` / ``from_dict``), persisted in checkpoints,
and applied through the single
:meth:`~repro.core.session.ExplorationSession.apply` /
:meth:`~repro.core.session.ExplorationSession.apply_many` codepath.

Kinds
-----
``cluster``      :class:`ClusterFeedback` — "these points form a cluster"
``view``         :class:`ViewSelectionFeedback` — knowledge along the
                 current view axes only (the 2-D constraint)
``margins``      :class:`MarginFeedback` — per-attribute means/variances
                 are known
``covariance``   :class:`CovarianceFeedback` — the overall covariance is
                 known (the 1-cluster constraint)

New kinds are registered by adding a dataclass with a unique ``kind`` and
calling :func:`register_feedback`; :func:`feedback_from_dict` then
round-trips it like the built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Iterable, Sequence

from repro.errors import DataShapeError

__all__ = [
    "Feedback",
    "ClusterFeedback",
    "ViewSelectionFeedback",
    "MarginFeedback",
    "CovarianceFeedback",
    "feedback_from_dict",
    "feedback_to_dict",
    "feedback_batch_from_payload",
    "register_feedback",
    "feedback_kinds",
]


def _as_rows(rows: Iterable[int]) -> tuple[int, ...]:
    """Normalise any integer iterable (list, ndarray, range) to a tuple."""
    try:
        return tuple(int(r) for r in rows)
    except (TypeError, ValueError, OverflowError) as exc:
        raise DataShapeError(f"rows must be an iterable of integers: {exc}") from exc


@dataclass(frozen=True)
class Feedback:
    """Base class: one unit of user knowledge, hashable and serialisable.

    Attributes
    ----------
    label:
        Optional human-readable name for the action; empty means "let the
        session pick one" (matching the legacy auto-labels, so undo stacks
        look identical either way).
    """

    #: Wire/registry identifier; every concrete subclass overrides this.
    kind: ClassVar[str] = ""

    label: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :func:`feedback_from_dict`."""
        payload: dict = {"kind": type(self).kind}
        for f in fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload


@dataclass(frozen=True)
class ClusterFeedback(Feedback):
    """"These points form a cluster" — the paper's main feedback kind."""

    kind: ClassVar[str] = "cluster"

    rows: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", _as_rows(self.rows))
        if not self.rows:
            raise DataShapeError("cluster feedback needs a non-empty row set")


@dataclass(frozen=True)
class ViewSelectionFeedback(Feedback):
    """Knowledge restricted to the current view axes (2-D constraint)."""

    kind: ClassVar[str] = "view"

    rows: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", _as_rows(self.rows))
        if not self.rows:
            raise DataShapeError("view feedback needs a non-empty row set")


@dataclass(frozen=True)
class MarginFeedback(Feedback):
    """Per-attribute means and variances declared known."""

    kind: ClassVar[str] = "margins"


@dataclass(frozen=True)
class CovarianceFeedback(Feedback):
    """Overall covariance declared known (the 1-cluster constraint)."""

    kind: ClassVar[str] = "covariance"


_KINDS: dict[str, type[Feedback]] = {}

#: Wire-format synonyms accepted by :func:`feedback_from_dict` — legacy
#: clients say ``"2d"`` for view feedback and ``"1-cluster"`` for
#: covariance feedback.
_ALIASES: dict[str, str] = {
    "2d": "view",
    "1-cluster": "covariance",
    "one-cluster": "covariance",
}


def register_feedback(
    cls: type[Feedback], *, overwrite: bool = False
) -> type[Feedback]:
    """Add a feedback dataclass to the wire registry; returns it.

    Raises :class:`ValueError` when the kind is already taken (unless
    ``overwrite=True``) — silently replacing a built-in would reroute
    every wire payload and checkpoint restore through the impostor.
    """
    kind = getattr(cls, "kind", "")
    if not isinstance(kind, str) or not kind:
        raise ValueError("feedback class must define a non-empty 'kind'")
    if not overwrite and kind in _KINDS and _KINDS[kind] is not cls:
        raise ValueError(
            f"feedback kind {kind!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _KINDS[kind] = cls
    return cls


for _cls in (ClusterFeedback, ViewSelectionFeedback, MarginFeedback, CovarianceFeedback):
    register_feedback(_cls)


def feedback_kinds() -> list[str]:
    """Registered feedback kinds, sorted (aliases not included)."""
    return sorted(_KINDS)


def feedback_to_dict(feedback: Feedback) -> dict:
    """Functional spelling of :meth:`Feedback.to_dict`."""
    if not isinstance(feedback, Feedback):
        raise DataShapeError(
            f"expected a Feedback object, got {type(feedback).__name__}"
        )
    return feedback.to_dict()


def feedback_from_dict(payload: dict) -> Feedback:
    """Rebuild one feedback object from its ``to_dict`` form.

    Raises
    ------
    DataShapeError
        On a non-dict payload, an unknown ``kind``, or field values the
        kind's constructor rejects.
    """
    if not isinstance(payload, dict):
        raise DataShapeError(
            f"expected a feedback dict, got {type(payload).__name__}"
        )
    raw_kind = payload.get("kind")
    if not isinstance(raw_kind, str):
        raise DataShapeError("feedback payload must carry a string 'kind'")
    kind = _ALIASES.get(raw_kind, raw_kind)
    cls = _KINDS.get(kind)
    if cls is None:
        raise DataShapeError(
            f"unknown feedback kind {raw_kind!r}; known: {feedback_kinds()}"
        )
    kwargs = {}
    names = {f.name for f in fields(cls)}
    for key, value in payload.items():
        if key == "kind":
            continue
        if key not in names:
            raise DataShapeError(
                f"feedback kind {kind!r} has no field {key!r}"
            )
        kwargs[key] = value
    if "label" in kwargs and kwargs["label"] is not None:
        kwargs["label"] = str(kwargs["label"])
    try:
        return cls(**kwargs)
    except DataShapeError:
        raise
    except (TypeError, ValueError) as exc:
        raise DataShapeError(f"malformed {kind!r} feedback: {exc}") from exc


def feedback_batch_from_payload(items: Sequence[dict] | object) -> list[Feedback]:
    """Parse a JSON list of feedback dicts, validating *before* applying.

    Used by the batch endpoint: the whole list is parsed up front so a
    malformed item rejects the request without mutating any session state.
    """
    if not isinstance(items, (list, tuple)) or not items:
        raise DataShapeError(
            "feedback batch must be a non-empty list of feedback objects"
        )
    return [feedback_from_dict(item) for item in items]
