"""Sampling stack profiler: continuous, low-overhead, stdlib-only.

Answers the question the metrics layer can't: *where* is the time going
when p99 plateaus.  A daemon thread wakes ~100 times a second, walks
``sys._current_frames()``, and counts collapsed call stacks per thread.
Because it samples rather than traces, the overhead is a few percent at
the default rate (the bench ``obs`` suite measures and gates the exact
ratio) — cheap enough to leave on for a whole loadgen soak, which is the
point of *continuous* profiling.

Output is the collapsed-stack format every flamegraph renderer ingests
(``a;b;c 42`` — one line per unique stack, count of samples):

* ``GET /v1/profile`` serves it live from a profiled server
  (``?format=json`` for the raw table);
* ``REPRO_PROF=1`` / ``repro serve --profile`` turn it on;
* slow requests get an *exemplar*: when a request breaches ``slow_ms``,
  the profiler's recent samples for the handling thread are attached to
  its event, so "p99 regressed" arrives with the offending stack.

The profiler is **off by default** and entirely decoupled from the rest
of :mod:`repro.obs` — it can run with observability disabled and vice
versa.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter, deque
from pathlib import Path

#: Default sampling cadence: 100 Hz — granular enough to attribute a
#: 50 ms code path, sparse enough to stay under a ~10% wall-clock tax
#: on a solver-bound workload (gated by the bench ``obs`` suite).
DEFAULT_INTERVAL = 0.01

#: Per-thread ring of recent (mono, stack) pairs for exemplar capture.
EXEMPLAR_RING = 64


#: Code object -> ``filestem:function`` label.  Formatting a frame costs
#: a :class:`~pathlib.Path` construction; caching by code object (stable
#: and hashable for the life of the function) turns the per-tick stack
#: walk from ~70 us into a few us, which is what keeps the sampler's
#: wall-clock tax inside the bench-gated budget.
_CODE_LABELS: dict[object, str] = {}


def _format_frame(frame) -> str:
    """``filestem:function`` — short enough to read in a flamegraph."""
    code = frame.f_code
    label = _CODE_LABELS.get(code)
    if label is None:
        label = f"{Path(code.co_filename).stem}:{code.co_name}"
        _CODE_LABELS[code] = label
    return label


def collapse_frame(frame) -> str:
    """Root-first collapsed stack (``main:run;api:dispatch;...``)."""
    parts: list[str] = []
    while frame is not None:
        parts.append(_format_frame(frame))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class StackProfiler:
    """Daemon thread sampling every live thread's stack at a fixed rate."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._stacks: Counter[str] = Counter()
        self._samples = 0
        self._started_at = 0.0
        self._recent: dict[int, deque[tuple[float, str]]] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start sampling (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling; collected stacks stay readable."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval * 10 + 1.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            now = time.perf_counter()
            frames = sys._current_frames()
            names = {
                t.ident: t.name
                for t in threading.enumerate()
                if t.ident is not None
            }
            with self._lock:
                for ident, frame in frames.items():
                    if ident == own_id:
                        continue
                    name = names.get(ident, f"thread-{ident}")
                    stack = f"{name};{collapse_frame(frame)}"
                    self._stacks[stack] += 1
                    self._samples += 1
                    ring = self._recent.get(ident)
                    if ring is None:
                        ring = deque(maxlen=EXEMPLAR_RING)
                        self._recent[ident] = ring
                    ring.append((now, stack))

    def sample_once(self) -> None:
        """Take one sample synchronously (deterministic tests)."""
        own_id = threading.get_ident()
        now = time.perf_counter()
        names = {
            t.ident: t.name for t in threading.enumerate()
            if t.ident is not None
        }
        with self._lock:
            for ident, frame in sys._current_frames().items():
                if ident == own_id:
                    continue
                name = names.get(ident, f"thread-{ident}")
                stack = f"{name};{collapse_frame(frame)}"
                self._stacks[stack] += 1
                self._samples += 1
                ring = self._recent.setdefault(
                    ident, deque(maxlen=EXEMPLAR_RING)
                )
                ring.append((now, stack))

    # -- reading -------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def stacks(self) -> dict[str, int]:
        """``{collapsed_stack: sample_count}`` snapshot."""
        with self._lock:
            return dict(self._stacks)

    def stats(self) -> dict:
        with self._lock:
            return {
                "samples": self._samples,
                "unique_stacks": len(self._stacks),
                "interval_seconds": self.interval,
                "running": self.running,
                "elapsed_seconds": (
                    time.perf_counter() - self._started_at
                    if self._started_at else 0.0
                ),
            }

    def render_collapsed(self, limit: int | None = None) -> str:
        """Collapsed-stack text (``stack count`` per line, hot first).

        Feed straight to ``flamegraph.pl`` / speedscope / inferno.
        """
        with self._lock:
            rows = self._stacks.most_common(limit)
        return "\n".join(f"{stack} {count}" for stack, count in rows) + (
            "\n" if rows else ""
        )

    def write_collapsed(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_collapsed(), encoding="utf-8")
        return path

    def excerpt(
        self,
        thread_ident: int | None = None,
        since: float | None = None,
        top: int = 5,
    ) -> list[dict]:
        """Recent-sample summary for one thread (slow-request exemplars).

        Returns ``[{"stack": s, "count": n}, ...]`` hottest-first, from
        the per-thread ring, optionally only samples at/after ``since``
        (a ``perf_counter`` stamp — pass the request's start time to
        scope the excerpt to that request's lifetime).
        """
        if thread_ident is None:
            thread_ident = threading.get_ident()
        with self._lock:
            ring = list(self._recent.get(thread_ident, ()))
        if since is not None:
            ring = [(mono, stack) for mono, stack in ring if mono >= since]
        tally = Counter(stack for _, stack in ring)
        return [
            {"stack": stack, "count": count}
            for stack, count in tally.most_common(top)
        ]

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._recent.clear()
            self._samples = 0
