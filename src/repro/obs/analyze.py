"""Offline analysis of the structured event log (``repro trace``).

Ingests the JSONL file an observability-enabled service wrote
(``REPRO_OBS_LOG`` / :func:`repro.obs.configure`) and reduces it to the
three views an operator actually wants after a run:

* per-route latency: request count, error count, p50/p95/p99/max
  (computed exactly from the per-event durations — unlike the live
  ``/v1/metrics`` histograms these are not bucket estimates);
* the top-N slowest requests, with their trace ids so they can be
  joined against client-side logs;
* the aggregated span tree: which instrumented blocks (``solve``,
  ``solve/init``, FastICA phases, ...) the wall-clock actually went to,
  across all traced requests.

Pure stdlib + numpy; nothing here touches the live observability state,
so it can run against a log from another process or machine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.obs.events import read_events

#: Percentiles reported per route (matches loadgen's client-side table).
_PERCENTILES = (50, 95, 99)


def analyze_events(events: Iterable[dict], top: int = 10) -> dict:
    """Reduce an event stream to the ``repro trace`` report (JSON-ready).

    Returns::

        {
          "events": total event count,
          "requests": request+error event count,
          "errors": {"total": n, "by_kind": {kind: n}},
          "routes": {route: {count, errors, mean_ms, p50_ms, ...}},
          "slowest": [{trace_id, route, status, duration_ms, ...}, ...],
          "spans": {path: {calls, seconds, failed}},
          "cache": {"hits": n, "misses": n} | None,
        }
    """
    total = 0
    durations: dict[str, list[float]] = {}
    route_errors: dict[str, int] = {}
    error_kinds: dict[str, int] = {}
    requests = 0
    slowest: list[dict] = []
    spans: dict[str, dict] = {}
    cache_hits = 0
    cache_misses = 0
    saw_cache = False

    for event in events:
        total += 1
        if event.get("event") not in ("request", "error"):
            continue
        requests += 1
        route = event.get("route", "?")
        duration = float(event.get("duration_ms", 0.0))
        durations.setdefault(route, []).append(duration)
        if event.get("event") == "error":
            route_errors[route] = route_errors.get(route, 0) + 1
            kind = event.get("error_kind", "error")
            error_kinds[kind] = error_kinds.get(kind, 0) + 1
        cache = event.get("cache")
        if cache is not None:
            saw_cache = True
            if cache == "hit":
                cache_hits += 1
            else:
                cache_misses += 1
        slowest.append(
            {
                "trace_id": event.get("trace_id"),
                "route": route,
                "status": event.get("status"),
                "duration_ms": duration,
                "session_id": event.get("session_id"),
                "solver_sweeps": event.get("solver_sweeps"),
                "slow": bool(event.get("slow", False)),
            }
        )
        for path, node in (event.get("spans") or {}).items():
            agg = spans.get(path)
            if agg is None:
                agg = {"calls": 0, "seconds": 0.0, "failed": 0}
                spans[path] = agg
            agg["calls"] += int(node.get("calls", 0))
            agg["seconds"] += float(node.get("seconds", 0.0))
            agg["failed"] += int(node.get("failed", 0))

    slowest.sort(key=lambda row: row["duration_ms"], reverse=True)
    routes: dict[str, dict] = {}
    for route in sorted(durations):
        values = np.asarray(durations[route], dtype=np.float64)
        stats = {
            "count": int(values.size),
            "errors": int(route_errors.get(route, 0)),
            "mean_ms": float(values.mean()),
            "max_ms": float(values.max()),
        }
        for q in _PERCENTILES:
            stats[f"p{q}_ms"] = float(np.percentile(values, q))
        routes[route] = stats

    return {
        "events": total,
        "requests": requests,
        "errors": {
            "total": int(sum(error_kinds.values())),
            "by_kind": dict(sorted(error_kinds.items())),
        },
        "routes": routes,
        "slowest": slowest[: max(0, int(top))],
        "spans": dict(sorted(spans.items())),
        "cache": (
            {"hits": cache_hits, "misses": cache_misses} if saw_cache else None
        ),
    }


def analyze_log(path: str | Path, top: int = 10) -> dict:
    """:func:`analyze_events` over a JSONL event-log file."""
    return analyze_events(read_events(path), top=top)


def _span_depth(path: str) -> int:
    return path.count("/")


def format_analysis(report: dict) -> str:
    """Human-readable report (what ``repro trace`` prints)."""
    lines = [
        f"{report['events']} event(s), {report['requests']} request(s), "
        f"{report['errors']['total']} error(s)"
    ]
    if report["errors"]["by_kind"]:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in report["errors"]["by_kind"].items()
        )
        lines.append(f"errors by kind: {kinds}")
    if report["cache"]:
        hits = report["cache"]["hits"]
        misses = report["cache"]["misses"]
        looked = hits + misses
        rate = hits / looked if looked else 0.0
        lines.append(
            f"solve cache (request-level): {hits} hit(s) / "
            f"{misses} miss(es) -> {rate:.2%}"
        )
    if report["routes"]:
        lines.append("")
        lines.append(
            "route                                    count    p50ms    "
            "p95ms    p99ms    maxms  err"
        )
        for route, stats in report["routes"].items():
            lines.append(
                f"{route:<40} {stats['count']:>5} "
                f"{stats['p50_ms']:>8.2f} {stats['p95_ms']:>8.2f} "
                f"{stats['p99_ms']:>8.2f} {stats['max_ms']:>8.2f} "
                f"{stats['errors']:>4}"
            )
    if report["slowest"]:
        lines.append("")
        lines.append(f"slowest {len(report['slowest'])} request(s):")
        for row in report["slowest"]:
            extra = ""
            if row.get("solver_sweeps") is not None:
                extra = f"  sweeps={row['solver_sweeps']}"
            lines.append(
                f"  {row['duration_ms']:>9.2f} ms  {row['status']}  "
                f"{row['route']:<40} trace={row['trace_id']}{extra}"
            )
    if report["spans"]:
        lines.append("")
        lines.append("span tree (aggregated over all traced requests):")
        total_seconds = sum(
            node["seconds"]
            for path, node in report["spans"].items()
            if _span_depth(path) == 0
        )
        for path, node in report["spans"].items():
            depth = _span_depth(path)
            name = path.rsplit("/", 1)[-1]
            share = (
                node["seconds"] / total_seconds if total_seconds > 0 else 0.0
            )
            failed = f"  failed={node['failed']}" if node["failed"] else ""
            lines.append(
                f"  {'  ' * depth}{name:<{30 - 2 * depth}} "
                f"{node['calls']:>6}x {node['seconds'] * 1e3:>10.2f} ms "
                f"({share:>6.1%}){failed}"
            )
    return "\n".join(lines)
