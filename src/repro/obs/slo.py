"""Declarative service-level objectives evaluated over retained metrics.

The paper's premise is interactivity: a projection update must come back
inside a human-scale budget or the exploration loop breaks.  This module
turns that budget — plus the operational invariants around it — into
*objectives* checked continuously against the time-series the
:class:`~repro.obs.timeseries.TimeSeriesRecorder` retains:

* ``view-latency-p99`` — windowed p99 of the view route ≤
  :data:`INTERACTIVITY_BUDGET_SECONDS` (the solver's own hard cutoff is
  10 s per the paper; the *served view* must stay well inside it because
  most views are cache hits or incremental updates);
* ``error-rate`` — 5xx responses ≤ 1% of requests;
* ``cache-hit-floor`` — solve-cache hit ratio over the window ≥ 10%
  (the cache is what makes repeated views interactive at all).

Each objective is evaluated over a *short* and a *long* window as a burn
rate (measured/threshold for ceilings, threshold/measured for floors;
≥ 1 means the objective is burning).  A breach of the short window only
reads as **degraded** (a blip); a breach of the long window reads as
**violating** (sustained).  ``GET /v1/health`` surfaces the overall
status and `repro slo check` exits nonzero on it, so CI can gate on the
paper's latency promise the same way it gates kernel baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from .timeseries import (
    TimeSeriesRecorder,
    counter_delta,
    histogram_delta,
    sample_key,
)
from .metrics import histogram_quantile

#: The human-scale budget a served view must meet (seconds).  The paper
#: caps a single solve at 10 s (`SolverOptions.time_cutoff`); the served
#: p99 must sit far inside that because cached and incremental views
#: dominate any real exploration loop.
INTERACTIVITY_BUDGET_SECONDS = 2.0

#: Route key of the projection-view endpoint (matches
#: :func:`repro.obs.route_template` output and loadgen's client table).
VIEW_ROUTE = "GET /v1/sessions/{id}/view"

#: Default evaluation windows (seconds).
SHORT_WINDOW = 60.0
LONG_WINDOW = 300.0


def match_labels(labels: Mapping[str, str], where: Mapping[str, str]) -> bool:
    """Label predicate: exact match, ``"*"`` wildcard, or ``"5xx"``-style
    status classes (``"5xx"`` matches ``"500"``–``"599"``)."""
    for key, want in where.items():
        got = labels.get(key)
        if want == "*":
            continue
        if (
            len(want) == 3
            and want.endswith("xx")
            and want[0].isdigit()
        ):
            if got is None or not got.startswith(want[0]) or len(got) != 3:
                return False
            continue
        if got != want:
            return False
    return True


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``kind`` selects the evaluation:

    * ``"quantile_ceiling"`` — quantile ``q`` of histogram ``family``
      (children matching ``where``) must stay ≤ ``threshold``;
    * ``"ratio_ceiling"`` / ``"ratio_floor"`` — the windowed increase of
      counter ``family`` matching ``where``, divided by the increase
      matching ``denominator_where`` (same ``denominator_family`` or
      ``family``), must stay ≤ / ≥ ``threshold``.

    ``min_count`` observations (histogram count, or denominator events)
    are required before the objective speaks at all — below it the
    window reports ``no_data`` instead of a spurious verdict.
    """

    name: str
    description: str
    kind: str
    family: str
    threshold: float
    where: Mapping[str, str] = field(default_factory=dict)
    q: float = 0.99
    denominator_family: str | None = None
    denominator_where: Mapping[str, str] = field(default_factory=dict)
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in (
            "quantile_ceiling", "ratio_ceiling", "ratio_floor"
        ):
            raise ValueError(f"unknown SLO kind {self.kind!r}")


@dataclass(frozen=True)
class WindowResult:
    """One objective evaluated over one window."""

    status: str  # "ok" | "breach" | "no_data"
    measured: float
    threshold: float
    burn: float  # >= 1.0 means the objective is burning
    count: int
    window_seconds: float

    def to_dict(self) -> dict:
        def _num(x: float) -> float | None:
            return None if isinstance(x, float) and math.isnan(x) else x

        return {
            "status": self.status,
            "measured": _num(self.measured),
            "threshold": self.threshold,
            "burn": _num(self.burn),
            "count": self.count,
            "window_seconds": self.window_seconds,
        }


_NO_DATA = WindowResult("no_data", math.nan, 0.0, math.nan, 0, 0.0)


def _matching_delta(
    first: Mapping, last: Mapping, family: str, where: Mapping[str, str]
) -> float:
    """Counter increase summed over children whose labels *match*
    (class/wildcard-aware, unlike the exact filter in timeseries)."""
    spec = last["families"].get(family)
    if spec is None:
        return 0.0
    total = 0.0
    for s in spec["samples"]:
        if match_labels(s["labels"], where):
            total += counter_delta(first, last, family, s["labels"])
    return total


def evaluate_window(slo: SLO, first: Mapping, last: Mapping) -> WindowResult:
    """Evaluate one objective over the window between two samples."""
    window = max(float(last["mono"]) - float(first["mono"]), 0.0)
    no_data = replace(_NO_DATA, threshold=slo.threshold,
                      window_seconds=window)
    if slo.kind == "quantile_ceiling":
        spec = last["families"].get(slo.family)
        if spec is None:
            return no_data
        merged_rows: list[list[float]] | None = None
        count = 0
        for s in spec["samples"]:
            if not match_labels(s["labels"], slo.where):
                continue
            child = histogram_delta(first, last, slo.family, s["labels"])
            if merged_rows is None:
                merged_rows = [[edge, 0.0] for edge, _ in child["buckets"]]
            for i, (_, cum) in enumerate(child["buckets"]):
                merged_rows[i][1] += cum
            count += child["count"]
        if merged_rows is None or count < slo.min_count:
            return no_data
        measured = histogram_quantile(
            [(row[0], row[1]) for row in merged_rows], count, slo.q
        )
        burn = measured / slo.threshold if slo.threshold > 0 else math.inf
        return WindowResult(
            "breach" if measured > slo.threshold else "ok",
            measured, slo.threshold, burn, count, window,
        )
    # ratio objectives
    den_family = slo.denominator_family or slo.family
    den = _matching_delta(first, last, den_family, slo.denominator_where)
    if den < slo.min_count:
        return no_data
    num = _matching_delta(first, last, slo.family, slo.where)
    measured = num / den
    if slo.kind == "ratio_ceiling":
        breached = measured > slo.threshold
        burn = measured / slo.threshold if slo.threshold > 0 else math.inf
    else:  # ratio_floor
        breached = measured < slo.threshold
        burn = (
            slo.threshold / measured if measured > 0
            else (math.inf if slo.threshold > 0 else 0.0)
        )
    return WindowResult(
        "breach" if breached else "ok",
        measured, slo.threshold, burn, int(den), window,
    )


def default_slos(
    view_p99_budget: float = INTERACTIVITY_BUDGET_SECONDS,
    error_rate_ceiling: float = 0.01,
    cache_hit_floor: float = 0.10,
    shed_rate_ceiling: float = 0.25,
) -> tuple[SLO, ...]:
    """The stock objectives the service evaluates when obs v2 is on."""
    return (
        SLO(
            name="view-latency-p99",
            description=(
                "p99 latency of the projection-view route must stay "
                "inside the paper's interactivity budget"
            ),
            kind="quantile_ceiling",
            family="repro_request_duration_seconds",
            where={"route": VIEW_ROUTE},
            q=0.99,
            threshold=view_p99_budget,
        ),
        SLO(
            name="error-rate",
            description="server errors (5xx) per request",
            kind="ratio_ceiling",
            family="repro_requests_total",
            where={"status": "5xx"},
            denominator_where={},
            threshold=error_rate_ceiling,
        ),
        SLO(
            name="cache-hit-floor",
            description=(
                "solve-cache hit ratio over the window (repeat views "
                "must be cache-fast to stay interactive)"
            ),
            kind="ratio_floor",
            family="repro_solve_cache_lookups_total",
            where={"result": "hit"},
            denominator_where={"result": "*"},
            threshold=cache_hit_floor,
            min_count=5,
        ),
        SLO(
            name="shed-rate",
            description=(
                "requests shed by admission control per request; "
                "shedding is the designed response to overload, but a "
                "sustained high rate means the deployment is undersized"
            ),
            kind="ratio_ceiling",
            family="repro_shed_total",
            where={"reason": "*"},
            denominator_family="repro_requests_total",
            denominator_where={},
            threshold=shed_rate_ceiling,
            min_count=5,
        ),
    )


class SLOEngine:
    """Evaluates a set of objectives against retained samples.

    Per objective: the *long* window breached → ``violating``; only the
    *short* window breached → ``degraded``; neither (or no data) →
    ``ok`` / ``no_data``.  The overall status is the worst per-objective
    status, mapped onto the health vocabulary ``ready`` / ``degraded`` /
    ``violating``.
    """

    def __init__(
        self,
        recorder: TimeSeriesRecorder,
        slos: Sequence[SLO] | None = None,
        short_window: float = SHORT_WINDOW,
        long_window: float = LONG_WINDOW,
    ) -> None:
        self.recorder = recorder
        self.slos = tuple(slos if slos is not None else default_slos())
        self.short_window = float(short_window)
        self.long_window = float(long_window)

    def report(self) -> dict:
        return evaluate_samples(
            self.recorder.window(),
            self.slos,
            short_window=self.short_window,
            long_window=self.long_window,
        )


def _window_pair(
    samples: Sequence[Mapping], seconds: float
) -> tuple[Mapping, Mapping] | None:
    """(oldest-in-window, newest) pair, or ``None`` with < 2 samples."""
    if len(samples) < 2:
        return None
    last = samples[-1]
    cutoff = float(last["mono"]) - seconds
    first = None
    for s in samples:
        if float(s["mono"]) >= cutoff:
            first = s
            break
    if first is None or first is last:
        first = samples[-2]
    return first, last


def evaluate_samples(
    samples: Sequence[Mapping],
    slos: Sequence[SLO],
    short_window: float = SHORT_WINDOW,
    long_window: float = LONG_WINDOW,
) -> dict:
    """Full SLO report over a sample list (live recorder or loaded file).

    The shape ``/v1/health`` extends with and ``repro slo check``
    consumes::

        {"status": "ready"|"degraded"|"violating",
         "slos": [{"name", "description", "status",
                   "short": {...}, "long": {...}}, ...],
         "samples": n}
    """
    short_pair = _window_pair(samples, short_window)
    long_pair = _window_pair(samples, long_window)
    rows = []
    overall = "ready"
    rank = {"ready": 0, "degraded": 1, "violating": 2}
    for slo in slos:
        short = (
            evaluate_window(slo, *short_pair) if short_pair else _NO_DATA
        )
        long = (
            evaluate_window(slo, *long_pair) if long_pair else _NO_DATA
        )
        if long.status == "breach":
            status = "violating"
        elif short.status == "breach":
            status = "degraded"
        elif short.status == long.status == "no_data":
            status = "no_data"
        else:
            status = "ok"
        rows.append({
            "name": slo.name,
            "description": slo.description,
            "status": status,
            "short": short.to_dict(),
            "long": long.to_dict(),
        })
        if status in rank and rank[status] > rank[overall]:
            overall = status
    return {"status": overall, "slos": rows, "samples": len(samples)}
