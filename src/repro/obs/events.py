"""Structured event log: one JSON object per line, append-only.

The sink behind ``REPRO_OBS_LOG``.  Every completed service request emits
one ``request`` event (or an additional ``error`` event for 4xx/5xx
responses); the analyzer (``repro trace``) and the CI smoke job read the
file back with :func:`read_events`.

Writes are line-buffered under a lock, so concurrent handler threads
never interleave partial lines, and each line is flushed as written —
a crash loses at most the event being formatted, and a tail -f on the
log sees requests as they complete.

Long-running services (loadgen soaks, ``repro screen`` style runs) can
bound the log with ``max_bytes``: when appending a line would push the
live file past the limit, it is renamed to ``<path>.<n>`` (``n``
increasing chronologically) and a fresh live file is started.
:func:`read_events` transparently spans the rotated files in order, so
``repro trace`` over a rotated log sees the full event stream.
"""

from __future__ import annotations

import io
import json
import re
import threading
import time
from pathlib import Path
from typing import Iterator

_ROTATED_SUFFIX = re.compile(r"^\.(\d+)$")


def rotated_paths(path: str | Path) -> list[Path]:
    """The rotated siblings of a live log, oldest first.

    Rotation appends increasing numeric suffixes (``events.jsonl.1`` was
    rotated out before ``events.jsonl.2``), so chronological order is
    numeric suffix order.
    """
    path = Path(path)
    found = []
    for sibling in path.parent.glob(path.name + ".*"):
        match = _ROTATED_SUFFIX.match(sibling.name[len(path.name):])
        if match:
            found.append((int(match.group(1)), sibling))
    return [sibling for _, sibling in sorted(found)]


class EventLog:
    """Append-only JSONL sink (a path, or any writable text stream).

    ``max_bytes`` (path targets only) rotates the live file to a numeric
    ``.<n>`` suffix before an append would exceed the limit; ``None``
    (the default) keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        target: str | Path | io.TextIOBase,
        max_bytes: int | None = None,
    ) -> None:
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
            self._size = self._stream.tell()
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False
            self._size = 0
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_bytes is not None and self.path is None:
            raise ValueError("max_bytes requires a path-backed log")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._emitted = 0
        self._rotations = 0

    def emit(self, event: dict) -> None:
        """Write one event (a ``"ts"`` wall-clock stamp is added if absent)."""
        if "ts" not in event:
            event = {"ts": time.time(), **event}
        line = json.dumps(event, separators=(",", ":"), default=str)
        nbytes = len(line.encode("utf-8")) + 1
        with self._lock:
            if self._stream.closed:
                return  # late event after close() — drop, never raise
            if (
                self.max_bytes is not None
                and self._size > 0
                and self._size + nbytes > self.max_bytes
            ):
                self._rotate_locked()
            self._stream.write(line + "\n")
            self._stream.flush()
            self._size += nbytes
            self._emitted += 1

    def _rotate_locked(self) -> None:
        """Move the live file aside and start a fresh one (lock held)."""
        assert self.path is not None
        existing = rotated_paths(self.path)
        next_index = (
            int(existing[-1].name.rsplit(".", 1)[1]) + 1 if existing else 1
        )
        self._stream.close()
        self.path.rename(self.path.with_name(f"{self.path.name}.{next_index}"))
        self._stream = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self._rotations += 1

    @property
    def emitted(self) -> int:
        """Events successfully written since this log was opened."""
        with self._lock:
            return self._emitted

    @property
    def rotations(self) -> int:
        """How many times the live file was rotated out."""
        with self._lock:
            return self._rotations

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield events from a JSONL log, skipping any truncated record.

    Spans size-based rotation: ``<path>.1``, ``<path>.2``, ... are read
    (in chronological order) before the live file, so analysis over a
    rotated log covers the whole run.  A process killed mid-write leaves
    at most one partial line per file; analysis over the surviving
    events is still valid.
    """
    path = Path(path)
    rotated = rotated_paths(path)
    sources = rotated + ([path] if path.exists() or not rotated else [])
    for source in sources:
        with open(source, encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
