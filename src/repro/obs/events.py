"""Structured event log: one JSON object per line, append-only.

The sink behind ``REPRO_OBS_LOG``.  Every completed service request emits
one ``request`` event (or an additional ``error`` event for 4xx/5xx
responses); the analyzer (``repro trace``) and the CI smoke job read the
file back with :func:`read_events`.

Writes are line-buffered under a lock, so concurrent handler threads
never interleave partial lines, and each line is flushed as written —
a crash loses at most the event being formatted, and a tail -f on the
log sees requests as they complete.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Iterator


class EventLog:
    """Append-only JSONL sink (a path, or any writable text stream)."""

    def __init__(self, target: str | Path | io.TextIOBase) -> None:
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()
        self._emitted = 0

    def emit(self, event: dict) -> None:
        """Write one event (a ``"ts"`` wall-clock stamp is added if absent)."""
        if "ts" not in event:
            event = {"ts": time.time(), **event}
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            if self._stream.closed:
                return  # late event after close() — drop, never raise
            self._stream.write(line + "\n")
            self._stream.flush()
            self._emitted += 1

    @property
    def emitted(self) -> int:
        """Events successfully written since this log was opened."""
        with self._lock:
            return self._emitted

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield events from a JSONL log, skipping any truncated final line."""
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # A process killed mid-write leaves at most one partial
                # line; analysis over the surviving events is still valid.
                continue
