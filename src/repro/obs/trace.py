"""Request tracing: a contextvar trace with perf timers as its spans.

A :class:`Trace` is one request's worth of observability state: a trace
id, the spans recorded while it was active, and any counters bumped along
the way.  The active trace lives in a :data:`contextvars.ContextVar`, so
it follows the request through nested calls on its handler thread without
any parameter threading — the solver, whitening and projection code never
learn that tracing exists.

Spans come for free from :mod:`repro.perf`: while observability is
enabled, :data:`repro.perf.trace_sink` is installed (see
:class:`PerfBridge`) and every ``perf.timer`` block on the process-wide
registry reports its nested slash path and duration into the active
trace, whether or not the perf registry itself is recording.  A trace's
span *tree* is therefore exactly the perf nesting tree ("solve/init" is a
child of "solve"), and ``perf.add`` counters (solver sweeps, cache hits)
land in :attr:`Trace.counters`.

Trace ids are propagated over HTTP in the ``X-Repro-Trace-Id`` header:
:class:`~repro.service.client.ServiceClient` sends one per request, the
server adopts a well-formed incoming id (or mints one) and echoes it on
the response, so client and server observations of the same request can
be joined on the id.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from contextvars import ContextVar

#: Accepted over the wire: hex, 8–64 chars (a uuid4 hex is 32).  Anything
#: else is replaced with a fresh id — header values go into logs, and an
#: unconstrained string would let clients inject arbitrary log content.
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")

_current: ContextVar["Trace | None"] = ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    """A fresh 32-char hex trace id."""
    return uuid.uuid4().hex


def accept_trace_id(candidate: str | None) -> str:
    """Adopt a well-formed incoming trace id, else mint a new one."""
    if candidate:
        candidate = candidate.strip().lower()
        if _TRACE_ID_RE.match(candidate):
            return candidate
    return new_trace_id()


class Trace:
    """Span and counter sink for one traced request."""

    __slots__ = ("trace_id", "started", "_spans", "_counters", "_lock", "_token")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.started = time.perf_counter()
        # (path, start offset s, duration s, failed)
        self._spans: list[tuple[str, float, float, bool]] = []
        self._counters: dict[str, float] = {}
        self._lock = threading.Lock()
        self._token = None

    # -- recording (called via the perf bridge) -------------------------

    def add_span(
        self, path: str, started: float, elapsed: float, failed: bool
    ) -> None:
        with self._lock:
            self._spans.append(
                (path, started - self.started, elapsed, failed)
            )

    def add_count(self, name: str, value: float) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # -- reporting ------------------------------------------------------

    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def span_count(self) -> int:
        with self._lock:
            return len(self._spans)

    def span_tree(self) -> dict[str, dict]:
        """Aggregated tree: path -> ``{"calls", "seconds"}``, sorted.

        The slash paths encode parent/child structure ("solve/init" is a
        child of "solve"), so this nested-dict-free form *is* the span
        tree — cheap to emit on every request and trivially mergeable
        across requests by the analyzer.
        """
        with self._lock:
            spans = list(self._spans)
        tree: dict[str, dict] = {}
        for path, _start, elapsed, failed in spans:
            entry = tree.get(path)
            if entry is None:
                tree[path] = entry = {"calls": 0, "seconds": 0.0}
            entry["calls"] += 1
            entry["seconds"] += elapsed
            if failed:
                entry["failed"] = entry.get("failed", 0) + 1
        return dict(sorted(tree.items()))

    def span_events(self) -> list[dict]:
        """Every individual span in completion order (slow-request detail)."""
        with self._lock:
            spans = list(self._spans)
        return [
            {
                "path": path,
                "start_ms": start * 1e3,
                "duration_ms": elapsed * 1e3,
                **({"failed": True} if failed else {}),
            }
            for path, start, elapsed, failed in spans
        ]


def start(trace_id: str | None = None) -> Trace:
    """Activate a new trace in the current context; returns it."""
    trace = Trace(trace_id)
    trace._token = _current.set(trace)
    return trace


def finish(trace: Trace) -> Trace:
    """Deactivate ``trace`` (must be the innermost active one)."""
    if trace._token is not None:
        _current.reset(trace._token)
        trace._token = None
    return trace


def current() -> Trace | None:
    """The trace active in this context, if any."""
    return _current.get()


class PerfBridge:
    """Installed as :data:`repro.perf.trace_sink` while obs is enabled.

    Forwards the process-wide perf registry's timer exits and counter
    bumps into whatever trace is active in the calling context.  With no
    active trace each forward is one contextvar read — cheap enough to
    leave installed for the whole life of the service.
    """

    __slots__ = ()

    def span(
        self, path: str, started: float, elapsed: float, failed: bool
    ) -> None:
        trace = _current.get()
        if trace is not None:
            trace.add_span(path, started, elapsed, failed)

    def count(self, name: str, value: float) -> None:
        trace = _current.get()
        if trace is not None:
            trace.add_count(name, value)
