"""Bounded metrics time-series: ring-buffer retention + rate derivation.

A one-shot ``/v1/metrics`` scrape answers "what has happened since the
process started"; it cannot answer "is p99 view latency inside the
paper's interactivity budget *right now*".  This module adds the
retention layer: a :class:`TimeSeriesRecorder` daemon thread snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` at a fixed cadence into a
bounded ring buffer, and the derivation helpers turn any pair of
snapshots into the quantities operators actually read —

* counters   → rates per second over the window (:func:`counter_delta`);
* histograms → *windowed* quantiles, i.e. the p99 of the last N seconds
  rather than of the whole process lifetime (:func:`histogram_delta` +
  :func:`~repro.obs.metrics.histogram_quantile`);
* gauges     → last observed value.

``GET /v1/metrics/history`` serves raw windows plus a server-side
:func:`derive` summary; the SLO engine (:mod:`repro.obs.slo`) and the
``repro top`` dashboard both read through here.  Everything is stdlib:
one daemon thread, one ``deque``, no background persistence.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Mapping

from .metrics import MetricsRegistry, histogram_quantile

#: Default recorder cadence (seconds) and retention (samples).  600
#: samples at 1 Hz keeps ten minutes of history in a few MB — enough to
#: see a loadgen warmup and evaluate multi-window SLO burn rates.
DEFAULT_INTERVAL = 1.0
DEFAULT_CAPACITY = 600

#: Derived-quantile levels served by ``/v1/metrics/history``.
QUANTILES = (0.5, 0.95, 0.99)


def sample_key(name: str, labels: Mapping[str, str]) -> str:
    """Stable prom-style series key: ``name{k="v",...}`` sorted by label."""
    if not labels:
        return name
    pairs = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{pairs}}}"


def _match(labels: Mapping[str, str], where: Mapping[str, str] | None) -> bool:
    if not where:
        return True
    return all(labels.get(k) == v for k, v in where.items())


class TimeSeriesRecorder:
    """Ring buffer of registry snapshots, filled by a daemon thread.

    Each sample is ``{"ts": wall_clock, "mono": monotonic_clock,
    "families": registry.render_json()}``; the monotonic stamp is what
    rate/derivation math uses, the wall stamp is for display.  The
    buffer is bounded (``capacity`` samples), so a week-long soak holds
    the same memory as a ten-minute one.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._samples: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ------------------------------------------------------

    def sample(self) -> dict:
        """Take one snapshot now (also what the daemon thread calls).

        Exposed so tests and the in-process dashboard can drive the
        recorder deterministically without waiting out the cadence.
        """
        entry = {
            "ts": time.time(),
            "mono": time.perf_counter(),
            "families": self.registry.render_json(),
        }
        with self._lock:
            self._samples.append(entry)
        return entry

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> None:
        """Start the recorder thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self.sample()  # an immediate first point anchors the window
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-recorder", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the recorder thread; retained samples stay readable."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval + 1.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- reading -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def window(self, seconds: float | None = None) -> list[dict]:
        """Retained samples, oldest first, optionally only the last N s."""
        with self._lock:
            samples = list(self._samples)
        if seconds is None or not samples:
            return samples
        cutoff = samples[-1]["mono"] - float(seconds)
        return [s for s in samples if s["mono"] >= cutoff]


# ----------------------------------------------------------------------
# Window derivation: snapshot pair -> rates / windowed quantiles
# ----------------------------------------------------------------------


def counter_delta(
    first: Mapping,
    last: Mapping,
    family: str,
    where: Mapping[str, str] | None = None,
) -> float:
    """Counter increase over a window, summed across matching children.

    Children absent from ``first`` (born mid-window) count from zero;
    a negative delta (counter reset, e.g. a restarted shard) clamps to
    the end value, mirroring PromQL ``increase()``.
    """
    spec_last = last["families"].get(family)
    if spec_last is None:
        return 0.0
    spec_first = first["families"].get(family, {"samples": []})
    start = {
        sample_key(family, s["labels"]): float(s["value"])
        for s in spec_first["samples"]
        if _match(s["labels"], where)
    }
    total = 0.0
    for s in spec_last["samples"]:
        if not _match(s["labels"], where):
            continue
        end = float(s["value"])
        begin = start.get(sample_key(family, s["labels"]), 0.0)
        total += end - begin if end >= begin else end
    return total


def histogram_delta(
    first: Mapping,
    last: Mapping,
    family: str,
    where: Mapping[str, str] | None = None,
) -> dict:
    """Windowed histogram: per-bucket increase summed over children.

    Returns ``{"buckets": [[le, cumulative], ...], "sum": s, "count": n}``
    in the same shape as ``Histogram.snapshot()``, but covering only the
    observations between the two samples — feeding it to
    :func:`~repro.obs.metrics.histogram_quantile` yields the windowed
    percentile.  Counter-reset children clamp to their end state.
    """
    spec_last = last["families"].get(family)
    if spec_last is None:
        return {"buckets": [], "sum": 0.0, "count": 0}
    spec_first = first["families"].get(family, {"samples": []})
    start = {
        sample_key(family, s["labels"]): s
        for s in spec_first["samples"]
        if _match(s["labels"], where)
    }
    edges: tuple[float, ...] | None = None
    bins: list[float] = []
    total_sum = 0.0
    total_count = 0
    for s in spec_last["samples"]:
        if not _match(s["labels"], where):
            continue
        end_edges = tuple(float(row[0]) for row in s["buckets"])
        if edges is None:
            edges = end_edges
            bins = [0.0] * len(edges)
        elif end_edges != edges:
            raise ValueError(
                f"family {family!r} has children with mismatched buckets"
            )
        prior = start.get(sample_key(family, s["labels"]))
        if prior is not None and int(prior["count"]) > int(s["count"]):
            prior = None  # reset mid-window: count the end state whole
        prior_rows = prior["buckets"] if prior is not None else []
        prior_cum = {float(row[0]): float(row[1]) for row in prior_rows}
        for i, (edge, cumulative) in enumerate(s["buckets"]):
            bins[i] += float(cumulative) - prior_cum.get(float(edge), 0.0)
        total_sum += float(s["sum"]) - (
            float(prior["sum"]) if prior is not None else 0.0
        )
        total_count += int(s["count"]) - (
            int(prior["count"]) if prior is not None else 0
        )
    if edges is None:
        return {"buckets": [], "sum": 0.0, "count": 0}
    rows = [[edge, bins[i]] for i, edge in enumerate(edges)]
    return {"buckets": rows, "sum": total_sum, "count": total_count}


def gauge_value(
    last: Mapping,
    family: str,
    where: Mapping[str, str] | None = None,
    combine: Callable[[list[float]], float] = sum,
) -> float:
    """Latest gauge reading, combined across matching children."""
    spec = last["families"].get(family)
    if spec is None:
        return math.nan
    values = [
        float(s["value"])
        for s in spec["samples"]
        if _match(s["labels"], where)
    ]
    return combine(values) if values else math.nan


def derive(first: Mapping, last: Mapping) -> dict:
    """Server-side summary of a window: rates + windowed quantiles.

    ``{"window_seconds": w, "counters": {key: {"increase", "rate"}},
    "histograms": {key: {"count", "rate", "mean", "p50", "p95",
    "p99"}}, "gauges": {key: value}}`` — keys are prom-style series
    keys (:func:`sample_key`).  This is what ``/v1/metrics/history``
    returns alongside the raw samples, so dashboards and ``repro slo
    check`` never re-implement the bucket math client-side.
    """
    window = max(float(last["mono"]) - float(first["mono"]), 0.0)
    out: dict = {
        "window_seconds": window,
        "counters": {},
        "histograms": {},
        "gauges": {},
    }
    for name, spec in last["families"].items():
        kind = spec["type"]
        if kind == "counter":
            for s in spec["samples"]:
                increase = counter_delta(first, last, name, s["labels"])
                out["counters"][sample_key(name, s["labels"])] = {
                    "increase": increase,
                    "rate": increase / window if window > 0 else 0.0,
                }
        elif kind == "gauge":
            for s in spec["samples"]:
                out["gauges"][sample_key(name, s["labels"])] = float(
                    s["value"]
                )
        elif kind == "histogram":
            for s in spec["samples"]:
                delta = histogram_delta(first, last, name, s["labels"])
                count = delta["count"]
                entry = {
                    "count": count,
                    "rate": count / window if window > 0 else 0.0,
                    "mean": delta["sum"] / count if count else math.nan,
                }
                rows = [(row[0], row[1]) for row in delta["buckets"]]
                for q in QUANTILES:
                    entry[f"p{int(q * 100)}"] = histogram_quantile(
                        rows, count, q
                    )
                out["histograms"][sample_key(name, s["labels"])] = entry
    return out
