"""Prometheus-style metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metric *families*; a family with
label names has one child per observed label-value combination (e.g. the
request-duration histogram keyed by route).  Everything is thread-safe —
the service records from one thread per connection — and renders two
ways:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (version 0.0.4) that ``GET /v1/metrics`` serves and any Prometheus
  scraper ingests;
* :meth:`MetricsRegistry.render_json` — the same data as plain dicts for
  programmatic consumers (``GET /v1/metrics?format=json``, loadgen's
  server-side capture).

The module also ships the consumer half used by the tests, the CI smoke
job and ``repro loadgen --obs``: :func:`parse_prometheus` (a small
exposition-format parser) and :func:`histogram_quantile` (percentile
estimation from cumulative bucket counts, the same estimate a
``histogram_quantile()`` PromQL query would make).

Nothing here imports the rest of :mod:`repro`; the registry is wired into
the request path by :mod:`repro.obs` and stays completely inert until
observability is enabled.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping

#: Default latency buckets (seconds).  Chosen for the paper's
#: interactivity budget: sub-millisecond cache hits up to multi-second
#: cold solves, roughly log-spaced so "within bucket resolution" stays a
#: meaningful latency comparison at every scale.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for small-count distributions (feedback batch sizes).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Buckets for fsync-class durations (WAL appends): the interesting
#: resolution is tens of microseconds (page-cache write) up to tens of
#: milliseconds (a real disk flush) — the request-latency buckets squash
#: that whole range into their first two bins.
DEFAULT_FSYNC_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.5,
)

#: Buckets for solver wall-clock: cold solves on large data run far past
#: the 10 s ceiling of the request-latency buckets, and the sub-ms bins
#: there are noise for a solve — shift the range up instead.
DEFAULT_SOLVE_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without the trailing .0."""
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Settable value, optionally backed by a callback read at render time."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._fn = None

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._fn = None

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn`` at every render (scrape-time value)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 — a broken callback must not
            # take the whole scrape down with it.
            return math.nan


class Histogram:
    """Fixed-bucket histogram: cumulative counts, sum, and total count."""

    __slots__ = ("buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, buckets: Iterable[float]) -> None:
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if edges[-1] == _INF:
            edges = edges[:-1]
        self.buckets = tuple(edges)
        self._lock = threading.Lock()
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # _counts holds per-bin counts; snapshot() accumulates them
            # into the cumulative form Prometheus expects.
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    self._counts[i] += 1
                    break

    def snapshot(self) -> dict:
        """``{"buckets": [[le, cumulative], ...], "sum": s, "count": n}``.

        Bucket counts are cumulative (Prometheus semantics); the implicit
        ``+Inf`` bucket equals ``count``.
        """
        with self._lock:
            cumulative = 0
            rows = []
            for edge, count in zip(self.buckets, self._counts):
                cumulative += count
                rows.append([edge, cumulative])
            return {
                "buckets": rows,
                "sum": self._sum,
                "count": self._count,
            }

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Addition of per-bucket counts, sum, and count — commutative and
        associative, so shard snapshots can be merged in any order.
        Raises :class:`ValueError` when the bucket edges differ (shards
        must share a bucket configuration to be mergeable).
        """
        rows = snap["buckets"]
        edges = tuple(float(row[0]) for row in rows)
        if edges != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{edges} vs {self.buckets}"
            )
        with self._lock:
            previous = 0
            for i, (_, cumulative) in enumerate(rows):
                cumulative = int(cumulative)
                self._counts[i] += cumulative - previous
                previous = cumulative
            self._sum += float(snap["sum"])
            # Observations past the last finite edge live only in the
            # total count (the implicit +Inf bucket) — carried over here.
            self._count += int(snap["count"])


class _Family:
    """One named metric family; children are keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        child_factory: Callable[[], object],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = labelnames
        self._child_factory = child_factory
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not labelnames:
            # Unlabelled families expose exactly one child, eagerly.
            self._children[()] = child_factory()

    def labels(self, **labels: str):
        """Child for one label-value combination (created on first use)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child_factory()
                self._children[key] = child
            return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def default(self):
        """The single child of an unlabelled family."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {list(self.labelnames)}; "
                "use .labels(...)"
            )
        return self._children[()]


class MetricsRegistry:
    """Thread-safe store of metric families with two render formats."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Iterable[str],
        child_factory: Callable[[], object],
    ) -> _Family:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {list(family.labelnames)}"
                    )
                return family
            family = _Family(name, kind, help_text, labelnames, child_factory)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "counter", help_text, labelnames, Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "gauge", help_text, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        edges = tuple(buckets)
        return self._register(
            name, "histogram", help_text, labelnames,
            lambda: Histogram(edges),
        )

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (tests; a live service never resets)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Shard snapshots: serialise + commutative merge
    # ------------------------------------------------------------------

    def to_snapshot(self, source: str | None = None) -> dict:
        """Portable snapshot of every family — the shard telemetry unit.

        The returned dict is JSON-ready and feeds :meth:`merge` on an
        aggregator registry.  Unlike :meth:`render_json` it carries the
        label *names* and metric kind per family, so a merge can
        re-register identical families on the receiving side.  ``source``
        tags the snapshot with the producing shard's identity (used to
        label gauges when merging).
        """
        with self._lock:
            families = sorted(self._families.items())
        payload: dict = {"version": 1, "families": {}}
        if source is not None:
            payload["source"] = str(source)
        for name, family in families:
            samples = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if family.kind in ("counter", "gauge"):
                    samples.append({"labels": labels, "value": child.value})
                else:
                    samples.append({"labels": labels, **child.snapshot()})
            payload["families"][name] = {
                "kind": family.kind,
                "help": family.help_text,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        return payload

    def merge(self, snapshot: Mapping, source: str | None = None) -> None:
        """Fold a shard's :meth:`to_snapshot` into this registry.

        Merge semantics per kind:

        * **counters** sum — commutative and associative, so merging N
          worker snapshots in any order equals one registry that saw the
          whole workload;
        * **histograms** sum per-bucket (same property; bucket edges must
          match across shards, :class:`ValueError` otherwise);
        * **gauges** are *not* summable (a mean of live-session counts
          means nothing) — each shard's value is kept as its own child
          under an extra ``source`` label.

        ``source`` names the producing shard; when omitted, the
        snapshot's own ``"source"`` tag (see :meth:`to_snapshot`) is
        used, falling back to ``"unknown"``.  Typically called on a
        *fresh* aggregator registry — merging gauges into a registry
        that already registered the same gauge family without the
        ``source`` label raises (conflicting label sets).
        """
        source = str(
            source if source is not None else snapshot.get("source", "unknown")
        )
        families = snapshot.get("families", snapshot)
        for name in sorted(families):
            spec = families[name]
            kind = spec["kind"]
            labelnames = tuple(spec.get("labelnames", ()))
            help_text = spec.get("help", "")
            if kind == "counter":
                family = self.counter(name, help_text, labelnames)
                for sample in spec["samples"]:
                    child = (
                        family.labels(**sample["labels"])
                        if labelnames else family.default()
                    )
                    child.inc(float(sample["value"]))
            elif kind == "gauge":
                family = self.gauge(name, help_text, labelnames + ("source",))
                for sample in spec["samples"]:
                    family.labels(**sample["labels"], source=source).set(
                        float(sample["value"])
                    )
            elif kind == "histogram":
                edges = None
                for sample in spec["samples"]:
                    edges = tuple(float(row[0]) for row in sample["buckets"])
                    break
                if edges is None:
                    continue  # no children observed on that shard yet
                family = self.histogram(
                    name, help_text, labelnames, buckets=edges
                )
                for sample in spec["samples"]:
                    child = (
                        family.labels(**sample["labels"])
                        if labelnames else family.default()
                    )
                    child.merge_snapshot(sample)
            else:
                raise ValueError(
                    f"snapshot family {name!r} has unknown kind {kind!r}"
                )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    @staticmethod
    def _labels_text(
        labelnames: tuple[str, ...],
        values: tuple[str, ...],
        extra: tuple[tuple[str, str], ...] = (),
    ) -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in list(zip(labelnames, values)) + list(extra)
        ]
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (the ``/v1/metrics`` body)."""
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for name, family in families:
            if family.help_text:
                lines.append(f"# HELP {name} {family.help_text}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, child in family.children():
                labels = self._labels_text(family.labelnames, values)
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{labels} {_format_value(child.value)}"
                    )
                    continue
                snap = child.snapshot()
                for edge, cumulative in snap["buckets"]:
                    le = self._labels_text(
                        family.labelnames, values,
                        extra=(("le", _format_value(edge)),),
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = self._labels_text(
                    family.labelnames, values, extra=(("le", "+Inf"),)
                )
                lines.append(f"{name}_bucket{inf} {snap['count']}")
                lines.append(
                    f"{name}_sum{labels} {_format_value(snap['sum'])}"
                )
                lines.append(f"{name}_count{labels} {snap['count']}")
        return "\n".join(lines) + "\n"

    def render_json(self) -> dict:
        """The same data as JSON-ready dicts, keyed by family name."""
        with self._lock:
            families = sorted(self._families.items())
        payload: dict = {}
        for name, family in families:
            samples = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if family.kind in ("counter", "gauge"):
                    samples.append({"labels": labels, "value": child.value})
                else:
                    samples.append({"labels": labels, **child.snapshot()})
            payload[name] = {
                "type": family.kind,
                "help": family.help_text,
                "samples": samples,
            }
        return payload


# ----------------------------------------------------------------------
# Consumer half: exposition parsing + percentile estimation
# ----------------------------------------------------------------------


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        j = eq + 2
        raw = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in {text!r}")
        labels[name] = _unescape_label("".join(raw))
        i = j + 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    Each sample is ``{"name": full sample name, "labels": {...},
    "value": float}`` — histogram ``_bucket``/``_sum``/``_count`` samples
    are attributed to their family.  Used by the tests and the CI smoke
    job to validate what ``GET /v1/metrics`` serves; it is a validator
    for this module's output, not a general-purpose Prometheus parser.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return sample_name

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"unknown metric type {kind!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        value_text = value_text.split()[0]
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        family = families.setdefault(
            family_for(sample_name),
            {"type": "untyped", "help": "", "samples": []},
        )
        family["samples"].append(
            {"name": sample_name, "labels": labels, "value": value}
        )
    return families


def histogram_quantile(
    buckets: list[tuple[float, float]], count: float, q: float
) -> float:
    """Estimate quantile ``q`` (0..1) from cumulative bucket counts.

    ``buckets`` is ``[(le, cumulative_count), ...]`` *excluding* the
    ``+Inf`` bucket; ``count`` is the total observation count.  Linear
    interpolation within the winning bucket, matching PromQL's
    ``histogram_quantile``; observations above the last finite bucket
    return that bucket's upper edge (the best available estimate).
    """
    if count <= 0:
        return math.nan
    rank = q * count
    previous_edge = 0.0
    previous_cum = 0.0
    for edge, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return edge
            fraction = (rank - previous_cum) / in_bucket
            return previous_edge + (edge - previous_edge) * fraction
        previous_edge = edge
        previous_cum = cumulative
    return buckets[-1][0] if buckets else math.nan


def bucket_bounds(
    buckets: list[tuple[float, float]], count: float, q: float
) -> tuple[float, float]:
    """The ``[lower, upper]`` edges of the bucket holding quantile ``q``.

    The truth lies somewhere inside these bounds — this is the "bucket
    resolution" loadgen's client/server latency cross-check allows for.
    An upper bound of ``inf`` means the quantile fell past the last
    finite bucket.
    """
    if count <= 0:
        return (math.nan, math.nan)
    rank = q * count
    previous_edge = 0.0
    for edge, cumulative in buckets:
        if cumulative >= rank:
            return (previous_edge, edge)
        previous_edge = edge
    return (previous_edge, _INF)
