"""`repro.obs`: request tracing, structured events, exportable metrics.

One switch turns the whole layer on: :func:`configure` (or the
``REPRO_OBS=1`` / ``REPRO_OBS_LOG=path`` environment variables, read at
import) installs a process-wide :class:`Observability` state that the
service and the compute kernels consult at runtime:

* **Tracing** — the HTTP layer starts a :class:`~repro.obs.trace.Trace`
  per request (id from the ``X-Repro-Trace-Id`` header, or minted) and
  every ``repro.perf`` timer that fires while it is active becomes a
  span of that request, via the bridge installed at
  :data:`repro.perf.trace_sink`.
* **Events** — each completed request is emitted as one JSONL line
  (route, status, trace id, duration, span tree, solver/cache counters)
  to the configured :class:`~repro.obs.events.EventLog`; requests slower
  than ``slow_ms`` — and every 4xx/5xx, as a typed ``error`` event —
  carry full per-span detail.
* **Metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms (request duration per route, solve
  duration, cache hit/miss, feedback batch size, live sessions) exported
  at ``GET /v1/metrics`` in Prometheus text format (JSON variant via
  ``?format=json``).

While *disabled* (the default) every hook in the hot path is one module
attribute read plus a ``None`` check — the same cost class as a disabled
``perf.add`` — pinned by a micro-benchmark in the test suite.
"""

from __future__ import annotations

import os
import re
import time

from repro import perf
from repro.obs import trace as trace_module
from repro.obs.events import EventLog, read_events
from repro.obs.metrics import (
    DEFAULT_FSYNC_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_SOLVE_BUCKETS,
    MetricsRegistry,
    bucket_bounds,
    histogram_quantile,
    parse_prometheus,
)
from repro.obs.profile import StackProfiler
from repro.obs.slo import SLO, SLOEngine, default_slos
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.trace import PerfBridge, Trace, accept_trace_id, new_trace_id

__all__ = [
    "EventLog",
    "MetricsRegistry",
    "Observability",
    "SLO",
    "SLOEngine",
    "StackProfiler",
    "TimeSeriesRecorder",
    "Trace",
    "accept_trace_id",
    "active",
    "bucket_bounds",
    "cache_lookup",
    "compaction",
    "configure",
    "deadline_exceeded",
    "default_slos",
    "disable",
    "feedback_batch",
    "feedback_deduplicated",
    "histogram_quantile",
    "is_enabled",
    "new_trace_id",
    "parse_prometheus",
    "profiler",
    "read_events",
    "recovery",
    "route_template",
    "shed",
    "solve_completed",
    "start_profiler",
    "stop_profiler",
    "trace_module",
    "wal_append",
]

#: HTTP header carrying the trace id in both directions.
TRACE_HEADER = "X-Repro-Trace-Id"

_SESSION_PATH = re.compile(
    r"^(?P<prefix>(?:/v1)?)/sessions/(?P<sid>[^/?]+)(?P<rest>/[^?]*)?$"
)


def route_template(method: str, path: str) -> tuple[str, str | None]:
    """Collapse a request path onto its route key; extract the session id.

    ``GET /v1/sessions/abc123/view?detail=1`` becomes
    ``("GET /v1/sessions/{id}/view", "abc123")`` — the same route keys
    the loadgen client records, so client- and server-side latency
    tables join on route strings directly.
    """
    path = path.split("?", 1)[0]
    if len(path) > 1:
        path = path.rstrip("/") or "/"
    match = _SESSION_PATH.match(path)
    if not match:
        return f"{method} {path}", None
    rest = match.group("rest") or ""
    template = f"{match.group('prefix')}/sessions/{{id}}{rest}"
    return f"{method} {template}", match.group("sid")


class Observability:
    """Process-wide observability state: metrics + event sink + tracing.

    Construct directly for tests; production code goes through
    :func:`configure`, which also installs the instance as the active
    state and hooks the perf-timer span bridge.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        slow_ms: float = 500.0,
        tracing: bool = True,
        bucket_overrides: dict[str, tuple[float, ...]] | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.slow_ms = float(slow_ms)
        self.tracing = bool(tracing)
        self.history: TimeSeriesRecorder | None = None
        self.slo: SLOEngine | None = None
        overrides = dict(bucket_overrides or {})

        def _buckets(name: str, default: tuple[float, ...]):
            return tuple(overrides.get(name, default))

        m = self.metrics
        self._requests = m.counter(
            "repro_requests_total",
            "Service requests handled, by route and status code.",
            labelnames=("route", "status"),
        )
        self._request_duration = m.histogram(
            "repro_request_duration_seconds",
            "Server-side request duration, by route.",
            labelnames=("route",),
            buckets=_buckets(
                "repro_request_duration_seconds", DEFAULT_LATENCY_BUCKETS
            ),
        )
        self._slow_requests = m.counter(
            "repro_slow_requests_total",
            "Requests slower than the slow-request threshold, by route.",
            labelnames=("route",),
        )
        self._solve_duration = m.histogram(
            "repro_solve_duration_seconds",
            "MaxEnt solver wall-clock per solve (INIT + OPTIM).",
            buckets=_buckets(
                "repro_solve_duration_seconds", DEFAULT_SOLVE_BUCKETS
            ),
        ).default()
        self._solver_sweeps = m.counter(
            "repro_solver_sweeps_total",
            "Full solver sweeps across all solves.",
        ).default()
        self._cache_lookups = m.counter(
            "repro_solve_cache_lookups_total",
            "Solve-cache lookups, by result.",
            labelnames=("result",),
        )
        self._feedback_batch = m.histogram(
            "repro_feedback_batch_size",
            "Feedback items per applied batch.",
            buckets=_buckets("repro_feedback_batch_size", DEFAULT_SIZE_BUCKETS),
        ).default()
        self._wal_append = m.histogram(
            "repro_wal_append_seconds",
            "Durable write-ahead append per feedback batch.",
            buckets=_buckets("repro_wal_append_seconds", DEFAULT_FSYNC_BUCKETS),
        ).default()
        self._compactions = m.counter(
            "repro_store_compactions_total",
            "Feedback-log folds into a fresh checkpoint.",
        ).default()
        self._compacted_records = m.counter(
            "repro_store_compacted_records_total",
            "WAL records pruned by compaction.",
        ).default()
        self._recoveries = m.counter(
            "repro_store_recoveries_total",
            "Session resumes that replayed a feedback-log tail.",
        ).default()
        self._recovered_batches = m.counter(
            "repro_store_recovered_batches_total",
            "Feedback batches replayed from the log during recovery.",
        ).default()
        self._shed = m.counter(
            "repro_shed_total",
            "Requests shed by admission control, by reason "
            "(overloaded / draining).",
            labelnames=("reason",),
        )
        self._deadline_exceeded = m.counter(
            "repro_deadline_exceeded_total",
            "Requests aborted because their deadline budget expired.",
        ).default()
        self._feedback_dedup = m.counter(
            "repro_feedback_deduplicated_total",
            "Feedback batches answered from the idempotency dedup map "
            "instead of re-applied.",
        ).default()
        self._sessions_gauge = m.gauge(
            "repro_sessions_in_memory",
            "Live sessions held in memory by the manager.",
        ).default()
        self._hit_ratio_gauge = m.gauge(
            "repro_solve_cache_hit_ratio",
            "Lifetime solve-cache hit ratio (0 when no cache).",
        ).default()

    # ------------------------------------------------------------------
    # Retention + objectives (obs v2)
    # ------------------------------------------------------------------

    def enable_history(
        self, interval: float = 1.0, capacity: int = 600
    ) -> TimeSeriesRecorder:
        """Start (or return) the ring-buffer metrics recorder."""
        if self.history is None:
            self.history = TimeSeriesRecorder(
                self.metrics, interval=interval, capacity=capacity
            )
        self.history.start()
        return self.history

    def enable_slos(
        self,
        slos=None,
        short_window: float | None = None,
        long_window: float | None = None,
        history_interval: float = 1.0,
        history_capacity: int = 600,
    ) -> SLOEngine:
        """Attach an SLO engine (implies history retention).

        ``slos`` is a sequence of :class:`~repro.obs.slo.SLO`; ``None``
        installs :func:`~repro.obs.slo.default_slos`.
        """
        recorder = self.enable_history(
            interval=history_interval, capacity=history_capacity
        )
        kwargs = {}
        if short_window is not None:
            kwargs["short_window"] = short_window
        if long_window is not None:
            kwargs["long_window"] = long_window
        self.slo = SLOEngine(recorder, slos=slos, **kwargs)
        return self.slo

    def slo_report(self) -> dict | None:
        """Current SLO evaluation, or ``None`` when no engine is on."""
        return self.slo.report() if self.slo is not None else None

    def shutdown(self) -> None:
        """Stop owned background threads (recorder); sinks stay open."""
        if self.history is not None:
            self.history.stop()

    # ------------------------------------------------------------------
    # Request-level recording
    # ------------------------------------------------------------------

    def observe_request(
        self,
        method: str,
        path: str,
        status: int,
        seconds: float,
        *,
        route: str | None = None,
        session_id: str | None = None,
        trace: Trace | None = None,
        trace_id: str | None = None,
        error: str | None = None,
        error_kind: str | None = None,
        started: float | None = None,
    ) -> None:
        """Record one finished request: metrics always, one event if a
        sink is configured (typed ``error`` event for 4xx/5xx)."""
        if route is None:
            route, extracted = route_template(method, path)
            session_id = session_id or extracted
        self._requests.labels(route=route, status=str(status)).inc()
        self._request_duration.labels(route=route).observe(seconds)
        duration_ms = seconds * 1e3
        slow = duration_ms >= self.slow_ms
        if slow:
            self._slow_requests.labels(route=route).inc()
        if self.events is None:
            return
        failed = status >= 400
        event: dict = {
            "event": "error" if failed else "request",
            "trace_id": trace.trace_id if trace is not None else trace_id,
            "route": route,
            "method": method,
            "path": path.split("?", 1)[0],
            "status": int(status),
            "duration_ms": duration_ms,
        }
        if session_id is not None:
            event["session_id"] = session_id
        if failed:
            event["error_kind"] = error_kind or "error"
            if error:
                event["error"] = error
        if slow:
            event["slow"] = True
        if trace is not None:
            counters = trace.counters
            if counters:
                event["counters"] = counters
                hits = counters.get("service.solve_cache_hits", 0)
                misses = counters.get("service.solves", 0)
                if hits or misses:
                    event["cache"] = "hit" if hits else "miss"
                sweeps = counters.get("solver.sweeps")
                if sweeps is not None:
                    event["solver_sweeps"] = int(sweeps)
            event["spans"] = trace.span_tree()
            if slow or failed:
                # Promote full per-span detail for the requests worth
                # staring at; routine fast requests stay one line.
                event["span_detail"] = trace.span_events()
        if slow:
            # Slow-request exemplar: if the sampling profiler is running,
            # attach its recent stacks for this handler thread, scoped to
            # the request's own lifetime — "p99 regressed" arrives with
            # the offending code path, not just a duration.
            prof = _profiler
            if prof is not None and prof.running:
                excerpt = prof.excerpt(since=started)
                if excerpt:
                    event["profile"] = excerpt
        self.events.emit(event)

    def update_service_gauges(self, manager) -> None:
        """Refresh scrape-time gauges from a session manager."""
        self._sessions_gauge.set(manager.live_session_count())
        cache = getattr(manager, "cache", None)
        ratio = cache.stats().get("hit_rate", 0.0) if cache is not None else 0.0
        self._hit_ratio_gauge.set(ratio)

    # ------------------------------------------------------------------
    # Kernel-level recording (module helpers forward here)
    # ------------------------------------------------------------------

    def record_solve(self, elapsed: float, sweeps: int) -> None:
        self._solve_duration.observe(elapsed)
        self._solver_sweeps.inc(sweeps)

    def record_cache_lookup(self, hit: bool) -> None:
        self._cache_lookups.labels(result="hit" if hit else "miss").inc()

    def record_feedback_batch(self, size: int) -> None:
        self._feedback_batch.observe(size)

    def record_wal_append(self, seconds: float) -> None:
        self._wal_append.observe(seconds)

    def record_compaction(self, pruned_records: int) -> None:
        self._compactions.inc()
        self._compacted_records.inc(pruned_records)

    def record_shed(self, reason: str) -> None:
        self._shed.labels(reason=reason).inc()

    def record_deadline_exceeded(self) -> None:
        self._deadline_exceeded.inc()

    def record_feedback_deduplicated(self) -> None:
        self._feedback_dedup.inc()

    def record_recovery(self, batches: int, warnings: int = 0) -> None:
        self._recoveries.inc()
        self._recovered_batches.inc(batches)
        if warnings and self.events is not None:
            self.events.emit(
                {"event": "recovery_warning", "warnings": int(warnings),
                 "replayed_batches": int(batches)}
            )


# ----------------------------------------------------------------------
# Process-wide state
# ----------------------------------------------------------------------

_active: Observability | None = None


def active() -> Observability | None:
    """The installed observability state, or ``None`` while disabled."""
    return _active


def is_enabled() -> bool:
    """Whether observability is currently on."""
    return _active is not None


def configure(
    event_log: str | EventLog | None = None,
    metrics: MetricsRegistry | None = None,
    slow_ms: float = 500.0,
    tracing: bool = True,
    bucket_overrides: dict[str, tuple[float, ...]] | None = None,
    event_log_max_bytes: int | None = None,
    history: bool = False,
    history_interval: float = 1.0,
    history_capacity: int = 600,
    slos=None,
    slo_short_window: float | None = None,
    slo_long_window: float | None = None,
) -> Observability:
    """Enable observability process-wide; returns the installed state.

    ``event_log`` may be a path (opened append-mode) or a pre-built
    :class:`EventLog`; ``None`` records metrics and traces without a
    JSONL sink.  ``event_log_max_bytes`` bounds a path-backed log via
    size rotation.  ``history=True`` starts the ring-buffer metrics
    recorder (``/v1/metrics/history``); ``slos`` attaches the SLO engine
    (``True`` for :func:`~repro.obs.slo.default_slos`, or an explicit
    sequence of :class:`~repro.obs.slo.SLO`) and implies history.
    ``bucket_overrides`` maps histogram family names to replacement
    bucket edges.  Reconfiguring replaces the previous state (its event
    log is closed if it was opened here; its recorder is stopped).
    """
    global _active
    previous = _active
    events = (
        EventLog(event_log, max_bytes=event_log_max_bytes)
        if isinstance(event_log, (str, os.PathLike))
        else event_log
    )
    state = Observability(
        metrics=metrics, events=events, slow_ms=slow_ms, tracing=tracing,
        bucket_overrides=bucket_overrides,
    )
    if slos is not None and slos is not False:
        state.enable_slos(
            slos=None if slos is True else slos,
            short_window=slo_short_window,
            long_window=slo_long_window,
            history_interval=history_interval,
            history_capacity=history_capacity,
        )
    elif history:
        state.enable_history(
            interval=history_interval, capacity=history_capacity
        )
    _active = state
    perf.trace_sink = PerfBridge() if tracing else None
    if previous is not None:
        previous.shutdown()
        if previous.events is not None and previous.events is not events:
            previous.events.close()
    return state


def disable() -> None:
    """Turn observability off, stop the recorder, close the event sink."""
    global _active
    state = _active
    _active = None
    perf.trace_sink = None
    if state is not None:
        state.shutdown()
        if state.events is not None:
            state.events.close()


# ----------------------------------------------------------------------
# Hot-path hooks (each is a no-op costing one global read while disabled)
# ----------------------------------------------------------------------


def solve_completed(elapsed: float, sweeps: int) -> None:
    """Called by the solver after every finished solve."""
    state = _active
    if state is not None:
        state.record_solve(elapsed, sweeps)


def cache_lookup(hit: bool) -> None:
    """Called by the solve cache on every lookup."""
    state = _active
    if state is not None:
        state.record_cache_lookup(hit)


def feedback_batch(size: int) -> None:
    """Called by the service when a feedback batch is applied."""
    state = _active
    if state is not None:
        state.record_feedback_batch(size)


def wal_append(seconds: float) -> None:
    """Called by the manager after each durable write-ahead append."""
    state = _active
    if state is not None:
        state.record_wal_append(seconds)


def compaction(pruned_records: int) -> None:
    """Called when a feedback log is folded into a checkpoint."""
    state = _active
    if state is not None:
        state.record_compaction(pruned_records)


def recovery(batches: int, warnings: int = 0) -> None:
    """Called when a resume replays a feedback-log tail."""
    state = _active
    if state is not None:
        state.record_recovery(batches, warnings)


def shed(reason: str) -> None:
    """Called when admission control refuses a request (``overloaded``
    / ``draining``)."""
    state = _active
    if state is not None:
        state.record_shed(reason)


def deadline_exceeded() -> None:
    """Called when a request is aborted by its deadline budget."""
    state = _active
    if state is not None:
        state.record_deadline_exceeded()


def feedback_deduplicated() -> None:
    """Called when an idempotency key answers a feedback batch from the
    dedup map instead of re-applying it."""
    state = _active
    if state is not None:
        state.record_feedback_deduplicated()


def request_envelope(method: str, path: str, trace_id: str | None = None):
    """Context manager tracing + recording one request (see ServiceAPI)."""
    return _RequestEnvelope(method, path, trace_id)


class _RequestEnvelope:
    """Times one request, traces it, and records it on exit.

    The HTTP layer and :meth:`ServiceAPI.dispatch` both use this; status
    and error typing are posted onto the envelope before exit via
    :meth:`set_result`.
    """

    __slots__ = (
        "method", "path", "trace_id", "trace", "started",
        "status", "error", "error_kind",
    )

    def __init__(self, method: str, path: str, trace_id: str | None) -> None:
        self.method = method
        self.path = path
        self.trace_id = trace_id
        self.trace: Trace | None = None
        self.started = 0.0
        self.status = 500
        self.error: str | None = None
        self.error_kind: str | None = None

    def __enter__(self) -> "_RequestEnvelope":
        state = _active
        if state is not None and state.tracing:
            self.trace = trace_module.start(self.trace_id)
            self.trace_id = self.trace.trace_id
        self.started = time.perf_counter()
        return self

    def set_result(
        self,
        status: int,
        error: str | None = None,
        error_kind: str | None = None,
    ) -> None:
        self.status = int(status)
        self.error = error
        self.error_kind = error_kind

    def __exit__(self, exc_type, exc, tb) -> None:
        seconds = time.perf_counter() - self.started
        if self.trace is not None:
            trace_module.finish(self.trace)
        state = _active
        if state is None:
            return None
        if exc_type is not None and self.error is None:
            # A bug that escaped the dispatcher's own error mapping.
            self.status = 500
            self.error = f"{exc_type.__name__}: {exc}"
            self.error_kind = "internal_error"
        state.observe_request(
            self.method,
            self.path,
            self.status,
            seconds,
            trace=self.trace,
            trace_id=self.trace_id,
            error=self.error,
            error_kind=self.error_kind,
            started=self.started,
        )
        return None


# ----------------------------------------------------------------------
# Continuous profiler (process-wide, decoupled from the obs switch)
# ----------------------------------------------------------------------

_profiler: StackProfiler | None = None


def profiler() -> StackProfiler | None:
    """The process profiler, or ``None`` if never started."""
    return _profiler


def start_profiler(
    interval: float | None = None,
) -> StackProfiler:
    """Start (or resume) the process-wide sampling profiler.

    ``interval`` seconds between samples (default ~100 Hz).  Idempotent;
    changing the interval while stopped replaces the profiler (and its
    accumulated stacks).
    """
    global _profiler
    from repro.obs import profile as profile_module

    if interval is None:
        interval = profile_module.DEFAULT_INTERVAL
    prof = _profiler
    if prof is None or (not prof.running and prof.interval != interval):
        prof = StackProfiler(interval=interval)
        _profiler = prof
    prof.start()
    return prof


def stop_profiler() -> StackProfiler | None:
    """Stop sampling; the collected stacks stay readable."""
    prof = _profiler
    if prof is not None:
        prof.stop()
    return prof


# Environment switch, read once at import: REPRO_OBS=1 enables the layer,
# REPRO_OBS_LOG both enables it and attaches the JSONL sink.
# REPRO_PROF=1 independently starts the sampling profiler
# (REPRO_PROF_HZ overrides the ~100 Hz default rate).
_env_log = os.environ.get("REPRO_OBS_LOG", "")
if os.environ.get("REPRO_OBS", "") == "1" or _env_log:
    configure(
        event_log=_env_log or None,
        slow_ms=float(os.environ.get("REPRO_OBS_SLOW_MS", "500")),
    )
if os.environ.get("REPRO_PROF", "") == "1":
    start_profiler(
        interval=1.0 / float(os.environ.get("REPRO_PROF_HZ", "100"))
    )
