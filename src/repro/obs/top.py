"""``repro top``: a live ANSI terminal dashboard for a running service.

Polls ``GET /v1/metrics?format=json`` and ``GET /v1/health`` on an
interval and renders, in place:

* overall health (ready / degraded / violating, with the burning SLO);
* per-route request rate and *windowed* p50/p95/p99 latency (derived
  client-side from consecutive scrapes with the same bucket math the
  server's history endpoint uses — the dashboard works against any
  server exposing ``/v1/metrics``, history retention or not);
* solve-cache hit rate over the window, live session count, and a
  sparkline of recent request throughput.

Pure stdlib, no curses: the screen is repainted with ANSI escape codes,
so it works in any terminal and in CI logs (``--iterations 1`` renders
one frame and exits, which is what the smoke test does).
"""

from __future__ import annotations

import math
import sys
import time
from collections import deque
from typing import Callable, Mapping, Sequence

from .metrics import histogram_quantile
from .timeseries import counter_delta, gauge_value, histogram_delta

_BLOCKS = "▁▂▃▄▅▆▇█"
_CSI = "\x1b["
_STATUS_COLOR = {
    "ready": "32",      # green
    "ok": "32",
    "degraded": "33",   # yellow
    "violating": "31",  # red
    "no_data": "90",    # dim
}


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render a series as unicode block characters, newest right."""
    values = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if not values:
        return ""
    values = values[-width:]
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v / top) * (len(_BLOCKS) - 1) + 0.5)
        out.append(_BLOCKS[max(0, min(idx, len(_BLOCKS) - 1))])
    return "".join(out)


def _color(text: str, code: str, enable: bool) -> str:
    return f"{_CSI}{code}m{text}{_CSI}0m" if enable else text


def _fmt_ms(seconds: float) -> str:
    if isinstance(seconds, float) and math.isnan(seconds):
        return "-"
    return f"{seconds * 1e3:.1f}"


class Dashboard:
    """Client-side state: recent scrapes + frame rendering.

    ``add()`` ingests one scrape (the ``families`` dict of
    ``/v1/metrics?format=json`` plus the ``/v1/health`` payload);
    ``render()`` returns one frame.  Timestamps are injectable so tests
    can drive deterministic windows.
    """

    def __init__(self, keep: int = 120, color: bool = True) -> None:
        self._samples: deque[dict] = deque(maxlen=keep)
        self._health: dict = {}
        self._rate_history: deque[float] = deque(maxlen=60)
        self.color = color

    def add(
        self,
        families: Mapping,
        health: Mapping | None = None,
        ts: float | None = None,
        mono: float | None = None,
    ) -> None:
        self._samples.append({
            "ts": ts if ts is not None else time.time(),
            "mono": mono if mono is not None else time.perf_counter(),
            "families": dict(families),
        })
        if health is not None:
            self._health = dict(health)
        if len(self._samples) >= 2:
            first, last = self._samples[-2], self._samples[-1]
            window = max(last["mono"] - first["mono"], 1e-9)
            total = counter_delta(first, last, "repro_requests_total")
            self._rate_history.append(total / window)

    # -- derivation ----------------------------------------------------

    def _pair(self) -> tuple[dict, dict] | None:
        if len(self._samples) < 2:
            return None
        return self._samples[0], self._samples[-1]

    def route_rows(self) -> list[dict]:
        """Per-route rate + windowed quantiles over the retained window."""
        pair = self._pair()
        if pair is None:
            return []
        first, last = pair
        window = max(last["mono"] - first["mono"], 1e-9)
        spec = last["families"].get("repro_request_duration_seconds")
        if spec is None:
            return []
        rows = []
        for s in spec["samples"]:
            route = s["labels"].get("route", "?")
            delta = histogram_delta(
                first, last, "repro_request_duration_seconds", s["labels"]
            )
            count = delta["count"]
            buckets = [(row[0], row[1]) for row in delta["buckets"]]
            rows.append({
                "route": route,
                "rate": count / window,
                "count": count,
                "p50": histogram_quantile(buckets, count, 0.5),
                "p95": histogram_quantile(buckets, count, 0.95),
                "p99": histogram_quantile(buckets, count, 0.99),
            })
        rows.sort(key=lambda r: -r["rate"])
        return rows

    def cache_hit_rate(self) -> float:
        pair = self._pair()
        if pair is None:
            return math.nan
        first, last = pair
        hits = counter_delta(
            first, last, "repro_solve_cache_lookups_total", {"result": "hit"}
        )
        misses = counter_delta(
            first, last, "repro_solve_cache_lookups_total", {"result": "miss"}
        )
        total = hits + misses
        return hits / total if total else math.nan

    def sessions_in_memory(self) -> float:
        if not self._samples:
            return math.nan
        return gauge_value(self._samples[-1], "repro_sessions_in_memory")

    # -- rendering -----------------------------------------------------

    def render(self, url: str = "", width: int = 100) -> str:
        c = self.color
        status = str(self._health.get("status", "unknown"))
        lines = []
        header = f" repro top — {url or 'service'}"
        stamp = time.strftime("%H:%M:%S", time.localtime(
            self._samples[-1]["ts"] if self._samples else time.time()
        ))
        pad = max(1, width - len(header) - len(stamp) - 1)
        lines.append(_color(header + " " * pad + stamp + " ", "7", c))
        lines.append(
            " health: "
            + _color(status, _STATUS_COLOR.get(status, "0"), c)
            + self._slo_summary()
        )
        sessions = self.sessions_in_memory()
        hit = self.cache_hit_rate()
        rate = self._rate_history[-1] if self._rate_history else math.nan
        lines.append(
            f" sessions: {'-' if math.isnan(sessions) else int(sessions)}"
            f"   cache hit: "
            f"{'-' if math.isnan(hit) else f'{hit * 100:.0f}%'}"
            f"   req/s: {'-' if math.isnan(rate) else f'{rate:.1f}'}  "
            + sparkline(list(self._rate_history))
        )
        lines.append("")
        rows = self.route_rows()
        if rows:
            lines.append(_color(
                f" {'route':<44} {'req/s':>7} {'p50ms':>8} "
                f"{'p95ms':>8} {'p99ms':>8}", "1", c,
            ))
            for r in rows[:12]:
                lines.append(
                    f" {r['route'][:44]:<44} {r['rate']:>7.1f} "
                    f"{_fmt_ms(r['p50']):>8} {_fmt_ms(r['p95']):>8} "
                    f"{_fmt_ms(r['p99']):>8}"
                )
        else:
            lines.append(" (waiting for a second scrape to derive rates...)")
        slos = self._health.get("slos")
        if slos:
            lines.append("")
            lines.append(_color(
                f" {'slo':<24} {'status':<10} {'measured':>10} "
                f"{'threshold':>10} {'burn':>6}", "1", c,
            ))
            for row in slos:
                short = row.get("short", {})
                measured = short.get("measured")
                burn = short.get("burn")
                lines.append(
                    f" {row['name'][:24]:<24} "
                    + _color(
                        f"{row['status']:<10}",
                        _STATUS_COLOR.get(row["status"], "0"), c,
                    )
                    + f" {'-' if measured is None else f'{measured:.4g}':>10}"
                    + f" {short.get('threshold', 0):>10.4g}"
                    + f" {'-' if burn is None else f'{burn:.2f}':>6}"
                )
        return "\n".join(lines) + "\n"

    def _slo_summary(self) -> str:
        slos = self._health.get("slos") or []
        burning = [r["name"] for r in slos
                   if r.get("status") in ("degraded", "violating")]
        return f"  (burning: {', '.join(burning)})" if burning else ""


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    stream=None,
    fetch: Callable[[], tuple[Mapping, Mapping]] | None = None,
    color: bool | None = None,
) -> int:
    """Poll a service and repaint the dashboard until interrupted.

    ``fetch`` (tests) overrides the HTTP scrape and must return
    ``(families, health)``.  ``iterations`` bounds the number of frames
    (``None`` = run until Ctrl-C).  Returns a shell exit code.
    """
    stream = stream if stream is not None else sys.stdout
    if color is None:
        color = bool(getattr(stream, "isatty", lambda: False)())
    if fetch is None:
        from repro.service.client import ServiceClient

        client = ServiceClient(url)

        def fetch() -> tuple[Mapping, Mapping]:
            payload = client.metrics()
            if not payload.get("enabled", False):
                raise RuntimeError(
                    "server has observability disabled — start it with "
                    "`repro serve --obs`"
                )
            return payload.get("families", {}), client.health()

    board = Dashboard(color=color)
    frame = 0
    try:
        while iterations is None or frame < iterations:
            families, health = fetch()
            board.add(families, health)
            if color:
                stream.write(f"{_CSI}H{_CSI}2J")
            stream.write(board.render(url=url))
            stream.flush()
            frame += 1
            if iterations is not None and frame >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    except RuntimeError as exc:
        stream.write(f"error: {exc}\n")
        return 1
    return 0
