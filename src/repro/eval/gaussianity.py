"""Gaussianity diagnostics for whitened data.

Once the background distribution has absorbed all the structure the user
marked, the whitened data should look like a unit spherical Gaussian
(Sec. II-B, Fig. 6).  These diagnostics quantify "looks like":

* per-dimension first/second moment deviations,
* excess kurtosis and log-cosh non-gaussianity per dimension,
* an aggregate deviation score usable as a stopping statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataShapeError
from repro.projection.scores import GAUSSIAN_LOGCOSH_MEAN


@dataclass(frozen=True)
class GaussianityReport:
    """Per-dimension and aggregate deviation of data from N(0, I).

    Attributes
    ----------
    mean_abs:
        |mean| per dimension (should be ~0).
    var_deviation:
        |var - 1| per dimension (should be ~0).
    excess_kurtosis:
        Excess kurtosis per dimension (0 for a Gaussian; negative for
        multimodal/cluster structure, positive for heavy tails).
    logcosh_deviation:
        ``E[log cosh] - E[log cosh nu]`` per *standardised* dimension.
    aggregate:
        Max over dimensions of
        ``max(mean_abs, var_deviation, |logcosh_deviation|)`` — a single
        "how far from explained" number.
    """

    mean_abs: np.ndarray
    var_deviation: np.ndarray
    excess_kurtosis: np.ndarray
    logcosh_deviation: np.ndarray
    aggregate: float


def gaussianity_report(whitened: np.ndarray) -> GaussianityReport:
    """Diagnose how far a whitened matrix is from a unit spherical Gaussian."""
    arr = np.asarray(whitened, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 4:
        raise DataShapeError(
            f"need a 2-D matrix with >= 4 rows, got shape {arr.shape}"
        )
    mean = arr.mean(axis=0)
    var = arr.var(axis=0, ddof=1)
    centred = arr - mean
    std = np.sqrt(np.maximum(var, 1e-300))
    standardised = centred / std
    kurt = np.mean(standardised**4, axis=0) - 3.0
    logcosh = np.mean(np.log(np.cosh(standardised)), axis=0) - GAUSSIAN_LOGCOSH_MEAN
    mean_abs = np.abs(mean)
    var_dev = np.abs(var - 1.0)
    aggregate = float(
        np.max(np.maximum(np.maximum(mean_abs, var_dev), np.abs(logcosh)))
    )
    return GaussianityReport(
        mean_abs=mean_abs,
        var_deviation=var_dev,
        excess_kurtosis=kurt,
        logcosh_deviation=logcosh,
        aggregate=aggregate,
    )


def dimensions_explained(
    whitened: np.ndarray,
    tolerance: float = 0.1,
    kurtosis_tolerance: float = 0.5,
) -> np.ndarray:
    """Boolean mask: which dimensions already look standard-normal.

    A dimension counts as explained when its mean, variance deviation and
    log-cosh deviation are all within ``tolerance`` *and* its excess
    kurtosis is within ``kurtosis_tolerance``.  Kurtosis is the sensitive
    channel for multimodal (cluster) structure whose first two moments are
    already matched — standardised k-modal data has strongly negative
    excess kurtosis.  Used by the Fig. 6 harness to show structure draining
    out of dims 1-3 and then 4-5.
    """
    report = gaussianity_report(whitened)
    return (
        (report.mean_abs <= tolerance)
        & (report.var_deviation <= tolerance)
        & (np.abs(report.logcosh_deviation) <= tolerance)
        & (np.abs(report.excess_kurtosis) <= kurtosis_tolerance)
    )
