"""Evaluation metrics: selection quality and whitened-data gaussianity."""

from repro.eval.gaussianity import (
    GaussianityReport,
    dimensions_explained,
    gaussianity_report,
)
from repro.eval.information import (
    background_kl_from_prior,
    knowledge_gain,
    row_negative_log_density,
)
from repro.eval.jaccard import best_matching_class, jaccard_index, jaccard_to_classes
from repro.eval.summaries import ColumnSummary, score_drop, summarize_columns

__all__ = [
    "jaccard_index",
    "jaccard_to_classes",
    "best_matching_class",
    "GaussianityReport",
    "gaussianity_report",
    "dimensions_explained",
    "ColumnSummary",
    "summarize_columns",
    "score_drop",
    "background_kl_from_prior",
    "row_negative_log_density",
    "knowledge_gain",
]
