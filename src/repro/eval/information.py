"""Information-theoretic diagnostics of the background distribution.

The MaxEnt objective (Prob. 1, Eq. 5) maximises the relative entropy
``S = -E_p[log(p/q)] = -KL(p || q)`` subject to the constraints; the
optimal value quantifies, in nats, how much the user's accumulated
knowledge has moved the belief state away from the uninformed spherical
prior.  For the row-factorised Gaussian solution this has a closed form
per row:

    KL( N(m, Sigma) || N(0, I) )
        = 1/2 * ( tr(Sigma) + m^T m - d - log det Sigma )

summed over rows via the equivalence-class counts.  The same quantities
give per-row *surprise* (negative log density), the principled version of
the ghost-displacement visual: how unlikely each observed row is under the
current belief state.
"""

from __future__ import annotations

import numpy as np

from repro.core.equivalence import EquivalenceClasses
from repro.core.parameters import ClassParameters
from repro.errors import DataShapeError
from repro.linalg import symmetric_eig

#: Eigenvalue floor for log-determinants of (near-)singular covariances.
#: Pinned directions otherwise send the KL to +inf; the floor makes the
#: reported knowledge large-but-finite, mirroring how the solver itself
#: only approaches singular optima (Fig. 5).
_LOGDET_FLOOR = 1e-12


def _class_logdets(params: ClassParameters) -> np.ndarray:
    """log det Sigma_c per class, with eigenvalue flooring."""
    out = np.empty(params.n_classes)
    for c in range(params.n_classes):
        vals, _ = symmetric_eig(params.sigma[c])
        out[c] = float(np.sum(np.log(np.maximum(vals, _LOGDET_FLOOR))))
    return out


def background_kl_from_prior(
    params: ClassParameters, classes: EquivalenceClasses
) -> float:
    """Total KL(p || q) of the background distribution from the prior.

    This is the negative of the optimised entropy objective: 0 nats with
    no constraints, growing as the user adds knowledge.  Returned in nats.
    """
    d = params.dim
    logdets = _class_logdets(params)
    traces = np.einsum("cii->c", params.sigma)
    mean_sq = np.einsum("ci,ci->c", params.mean, params.mean)
    per_class = 0.5 * (traces + mean_sq - d - logdets)
    counts = classes.class_counts.astype(np.float64)
    return float(np.dot(counts, per_class))


def row_negative_log_density(
    data: np.ndarray,
    params: ClassParameters,
    classes: EquivalenceClasses,
) -> np.ndarray:
    """Per-row surprise: ``-log p(x_i)`` under the background distribution.

    ``1/2 [ (x-m)^T Sigma^{-1} (x-m) + log det Sigma + d log 2 pi ]`` with
    the Mahalanobis part computed through the same clamped whitening used
    everywhere else, so pinned directions stay finite.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != classes.n_rows or arr.shape[1] != params.dim:
        raise DataShapeError(
            f"data shape {arr.shape} does not match model "
            f"(n={classes.n_rows}, d={params.dim})"
        )
    from repro.core.whitening import whiten

    whitened = whiten(arr, params, classes)
    maha_sq = np.einsum("ij,ij->i", whitened, whitened)
    logdets = _class_logdets(params)[classes.class_of_row]
    d = params.dim
    return 0.5 * (maha_sq + logdets + d * np.log(2.0 * np.pi))


def knowledge_gain(
    before: float, after: float
) -> float:
    """Nats of knowledge one feedback round added (clamped at zero).

    Tiny negative differences can appear when both fits stop at tolerance;
    they carry no meaning, so they are clamped.
    """
    return max(0.0, after - before)
