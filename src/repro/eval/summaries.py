"""Aggregate summaries used by experiments and the UI statistics panel."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataShapeError


@dataclass(frozen=True)
class ColumnSummary:
    """Five-number-style summary of one attribute (for the UI panel)."""

    name: str
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize_columns(
    data: np.ndarray, feature_names: list[str] | tuple[str, ...] | None = None
) -> list[ColumnSummary]:
    """Per-column summaries of a data matrix."""
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(f"expected 2-D data, got shape {arr.shape}")
    d = arr.shape[1]
    names = list(feature_names) if feature_names else [f"X{j + 1}" for j in range(d)]
    if len(names) != d:
        raise DataShapeError(f"{len(names)} names for {d} columns")
    out = []
    for j in range(d):
        col = arr[:, j]
        out.append(
            ColumnSummary(
                name=names[j],
                mean=float(col.mean()),
                std=float(col.std(ddof=1)) if col.size > 1 else 0.0,
                minimum=float(col.min()),
                median=float(np.median(col)),
                maximum=float(col.max()),
            )
        )
    return out


def score_drop(before: np.ndarray, after: np.ndarray) -> float:
    """Relative drop of the top |view score| between two iterations.

    1.0 means the new view is fully explained relative to the old one;
    values near 0 mean the constraint taught the model nothing.
    """
    top_before = float(np.max(np.abs(np.asarray(before))))
    top_after = float(np.max(np.abs(np.asarray(after))))
    if top_before == 0.0:
        return 0.0
    return 1.0 - top_after / top_before
