"""Jaccard indices between selections and class labels.

The paper reports how well a user's point selection matches a ground-truth
class with the Jaccard index |S ∩ C| / |S ∪ C| (e.g. the first BNC
selection has Jaccard 0.928 to 'transcribed conversations').
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DataShapeError


def jaccard_index(
    selection: Sequence[int] | np.ndarray, class_rows: Sequence[int] | np.ndarray
) -> float:
    """Jaccard similarity of two row-index sets.

    Returns 0.0 when both sets are empty (a conventional choice: an empty
    selection matches nothing).
    """
    s = set(int(i) for i in np.asarray(selection).ravel())
    c = set(int(i) for i in np.asarray(class_rows).ravel())
    union = s | c
    if not union:
        return 0.0
    return len(s & c) / len(union)


def jaccard_to_classes(
    selection: Sequence[int] | np.ndarray, labels: np.ndarray
) -> dict:
    """Jaccard of a selection against every class in a label vector.

    Returns a dict mapping class label -> Jaccard index, sorted by
    decreasing index.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise DataShapeError(f"labels must be 1-D, got shape {labels.shape}")
    out = {}
    for value in np.unique(labels):
        rows = np.flatnonzero(labels == value)
        key = value.item() if hasattr(value, "item") else value
        out[key] = jaccard_index(selection, rows)
    return dict(sorted(out.items(), key=lambda kv: kv[1], reverse=True))


def best_matching_class(
    selection: Sequence[int] | np.ndarray, labels: np.ndarray
) -> tuple[object, float]:
    """The class with the highest Jaccard to the selection, and its index."""
    table = jaccard_to_classes(selection, labels)
    if not table:
        raise DataShapeError("label vector has no classes")
    label, value = next(iter(table.items()))
    return label, value
