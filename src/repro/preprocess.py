"""Preprocessing for non-real-valued data: the paper's extension hook.

The conclusions note that the framework "could be generalized to other
data types, such as categorical or ordinal data values ... likely in a
straightforward manner".  The straightforward route implemented here keeps
the Gaussian MaxEnt machinery intact and adapts the *data* instead:

* **ordinal columns** — rank-based inverse-normal transform (van der
  Waerden scores): monotone, distribution-free, maps any ordinal scale to
  a standard-normal-like column so the spherical prior (Eq. 1) is a
  sensible initial belief;
* **categorical columns** — centred one-hot indicator blocks scaled by
  ``1/sqrt(p(1-p))`` per level, so each indicator has unit variance and a
  cluster constraint over a selection captures its level distribution;
* **numeric columns** — passed through (standardise at the model instead).

:class:`MixedEncoder` assembles per-column transforms into one matrix and
keeps the bookkeeping needed to map encoded feature indices back to source
columns (for axis labels and pairplots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import ndtri

from repro.errors import DataShapeError


def rank_gaussianize(values: np.ndarray) -> np.ndarray:
    """Rank-based inverse normal transform of a 1-D array.

    Ties share their average rank (midrank), so equal ordinal levels map
    to equal scores.  Uses the Blom-like offset ``(r - 3/8)/(n + 1/4)``
    before the normal quantile, which keeps extreme ranks finite.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataShapeError(f"expected 1-D values, got shape {arr.shape}")
    n = arr.size
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(1, n + 1)
    # Midranks for ties.
    sorted_vals = arr[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    return ndtri((ranks - 0.375) / (n + 0.25))


def one_hot_encode(
    values: np.ndarray,
    drop_last: bool = False,
) -> tuple[np.ndarray, list]:
    """Centred, variance-scaled one-hot encoding of a categorical column.

    Each level's indicator is centred by its frequency ``p`` and scaled by
    ``1/sqrt(p(1-p))`` so every output column has zero mean and unit
    variance — matching the scale the spherical prior expects.

    Parameters
    ----------
    values:
        1-D categorical column.
    drop_last:
        Drop the last level's indicator.  The full indicator set is
        linearly dependent (the raw indicators sum to 1), which leaves a
        zero-variance direction in the encoded data — poison for whitening
        and for the unit-deviation PCA score.  :class:`MixedEncoder` always
        encodes with ``drop_last=True`` for exactly this reason; the full
        set is available here for callers who handle the degeneracy
        themselves.

    Returns
    -------
    (matrix, levels):
        ``matrix`` with one column per *kept* level (first-appearance
        order); ``levels`` the corresponding level values.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise DataShapeError(f"expected 1-D values, got shape {arr.shape}")
    levels: list = []
    seen = set()
    for item in arr:
        key = item.item() if hasattr(item, "item") else item
        if key not in seen:
            seen.add(key)
            levels.append(key)
    if len(levels) < 2:
        raise DataShapeError("categorical column needs at least 2 levels")
    if drop_last:
        levels = levels[:-1]
    n = arr.size
    out = np.empty((n, len(levels)))
    for j, level in enumerate(levels):
        indicator = (arr == level).astype(np.float64)
        p = float(indicator.mean())
        scale = np.sqrt(p * (1.0 - p))
        out[:, j] = (indicator - p) / scale
    return out, levels


@dataclass
class ColumnSpec:
    """How one source column was encoded.

    Attributes
    ----------
    name:
        Source column name.
    kind:
        ``"numeric"`` / ``"ordinal"`` / ``"categorical"``.
    output_slice:
        Columns of the encoded matrix this source column produced.
    levels:
        Category levels (categorical columns only).
    """

    name: str
    kind: str
    output_slice: slice
    levels: list = field(default_factory=list)


class MixedEncoder:
    """Encode a mixed-type table into one real matrix for the MaxEnt loop.

    Parameters
    ----------
    kinds:
        Mapping column-name -> ``"numeric" | "ordinal" | "categorical"``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.preprocess import MixedEncoder
    >>> encoder = MixedEncoder({"age": "numeric", "grade": "ordinal",
    ...                         "colour": "categorical"})
    >>> table = {
    ...     "age": np.array([30.0, 40.0, 50.0, 35.0]),
    ...     "grade": np.array([1, 3, 2, 3]),
    ...     "colour": np.array(["r", "g", "r", "b"]),
    ... }
    >>> encoded = encoder.fit_transform(table)
    >>> encoded.shape[0]
    4
    """

    def __init__(self, kinds: dict) -> None:
        valid = {"numeric", "ordinal", "categorical"}
        for name, kind in kinds.items():
            if kind not in valid:
                raise DataShapeError(
                    f"column {name!r}: unknown kind {kind!r}; use one of {valid}"
                )
        if not kinds:
            raise DataShapeError("encoder needs at least one column")
        self._kinds = dict(kinds)
        self._specs: list[ColumnSpec] = []
        self._fitted = False

    @property
    def specs(self) -> list[ColumnSpec]:
        """Per-source-column encoding records (after fit_transform)."""
        return list(self._specs)

    def fit_transform(self, table: dict) -> np.ndarray:
        """Encode a column-name -> 1-D-array mapping into one matrix."""
        missing = [name for name in self._kinds if name not in table]
        if missing:
            raise DataShapeError(f"table is missing columns: {missing}")
        lengths = {name: np.asarray(table[name]).shape[0] for name in self._kinds}
        if len(set(lengths.values())) != 1:
            raise DataShapeError(f"column lengths differ: {lengths}")

        blocks = []
        self._specs = []
        start = 0
        for name, kind in self._kinds.items():
            column = np.asarray(table[name])
            if kind == "numeric":
                block = column.astype(np.float64)[:, None]
                levels: list = []
            elif kind == "ordinal":
                block = rank_gaussianize(column.astype(np.float64))[:, None]
                levels = []
            else:
                # drop_last: the full indicator set is rank-deficient; see
                # one_hot_encode.
                block, levels = one_hot_encode(column, drop_last=True)
            stop = start + block.shape[1]
            self._specs.append(
                ColumnSpec(
                    name=name, kind=kind, output_slice=slice(start, stop),
                    levels=levels,
                )
            )
            blocks.append(block)
            start = stop
        self._fitted = True
        return np.hstack(blocks)

    def feature_names(self) -> list[str]:
        """Names of the encoded columns, e.g. ``colour=r`` for indicators."""
        if not self._fitted:
            raise DataShapeError("call fit_transform first")
        names: list[str] = []
        for spec in self._specs:
            if spec.kind == "categorical":
                names.extend(f"{spec.name}={level}" for level in spec.levels)
            else:
                names.append(spec.name)
        return names

    def source_of_feature(self, index: int) -> str:
        """Source column name of one encoded feature index."""
        if not self._fitted:
            raise DataShapeError("call fit_transform first")
        for spec in self._specs:
            if spec.output_slice.start <= index < spec.output_slice.stop:
                return spec.name
        raise DataShapeError(f"feature index {index} out of range")
