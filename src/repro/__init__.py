"""repro — a Python reproduction of the SIDER interactive EDA system.

Implements Puolamäki, Oikarinen, Kang, Lijffijt & De Bie:
"Interactive Visual Data Exploration with Subjective Feedback: An
Information-Theoretic Approach" (ICDE 2018).

Quick start
-----------
>>> from repro import ExplorationSession
>>> from repro.datasets import three_d_clusters
>>> bundle = three_d_clusters(seed=0)
>>> session = ExplorationSession(bundle.data, objective="pca")
>>> view = session.current_view()          # most informative 2-D projection
>>> session.mark_cluster(range(0, 50))     # "these points form a cluster"
>>> next_view = session.current_view()     # belief state updated

Package map
-----------
``repro.core``        MaxEnt background distribution + interaction loop
``repro.projection``  PCA / FastICA projection pursuit and view scores
``repro.linalg``      Woodbury updates, eigen helpers, root finding
``repro.datasets``    paper datasets and surrogates
``repro.ui``          headless SIDER user-interface computations
``repro.eval``        Jaccard / gaussianity metrics
``repro.baselines``   static projection pursuit and randomization baselines
``repro.experiments`` one harness per table/figure of the paper
``repro.service``     multi-tenant session server: stores, solve cache,
                      manager, HTTP API and client (``repro serve``)
"""

from repro.core import (
    BackgroundModel,
    Constraint,
    ConstraintKind,
    ExplorationSession,
    SolverOptions,
    SolverReport,
)
from repro.errors import (
    ConstraintError,
    ConvergenceError,
    DataShapeError,
    NotFittedError,
    ReproError,
    RootFindError,
)
from repro.projection import Projection2D, most_informative_view
from repro.service import (
    DirectoryStore,
    MemoryStore,
    ServiceClient,
    SessionManager,
    SolveCache,
)

__version__ = "1.1.0"

__all__ = [
    "BackgroundModel",
    "Constraint",
    "ConstraintKind",
    "ExplorationSession",
    "SolverOptions",
    "SolverReport",
    "Projection2D",
    "most_informative_view",
    "SessionManager",
    "SolveCache",
    "MemoryStore",
    "DirectoryStore",
    "ServiceClient",
    "ReproError",
    "ConstraintError",
    "ConvergenceError",
    "DataShapeError",
    "NotFittedError",
    "RootFindError",
    "__version__",
]
