"""repro — a Python reproduction of the SIDER interactive EDA system.

Implements Puolamäki, Oikarinen, Kang, Lijffijt & De Bie:
"Interactive Visual Data Exploration with Subjective Feedback: An
Information-Theoretic Approach" (ICDE 2018).

Quick start
-----------
>>> from repro import ClusterFeedback, ExplorationSession
>>> from repro.datasets import three_d_clusters
>>> bundle = three_d_clusters(seed=0)
>>> session = ExplorationSession(bundle.data, objective="pca")
>>> view = session.current_view()          # most informative 2-D projection
>>> _ = session.apply(ClusterFeedback(rows=range(50)))   # "a cluster here"
>>> next_view = session.current_view()     # belief state updated

Two extensible vocabularies thread through every layer:

* **Objectives** (:mod:`repro.projection.registry`) rank candidate views.
  Built-ins: ``pca``, ``ica``, ``kurtosis``, ``axis``; register your own
  with ``registry.register(...)`` and it becomes usable in sessions, the
  CLI and the ``/v1`` service API without touching core files.
* **Feedback** (:mod:`repro.feedback`) encodes user knowledge as typed,
  serialisable objects (``ClusterFeedback``, ``ViewSelectionFeedback``,
  ``MarginFeedback``, ``CovarianceFeedback``) applied through
  ``session.apply(...)`` / ``session.apply_many(...)`` — a batch costs at
  most one background-model fit.

Package map
-----------
``repro.core``        MaxEnt background distribution + interaction loop
``repro.projection``  projection pursuit: objective registry (PCA /
                      FastICA / kurtosis / axis + plugins), view scores
``repro.feedback``    typed feedback vocabulary (serialisable, batchable)
``repro.linalg``      Woodbury updates, eigen helpers, root finding
``repro.datasets``    paper datasets and surrogates
``repro.ui``          headless SIDER user-interface computations
``repro.eval``        Jaccard / gaussianity metrics
``repro.baselines``   static projection pursuit and randomization baselines
``repro.experiments`` one harness per table/figure of the paper
``repro.service``     multi-tenant session server: stores, solve cache,
                      manager, versioned ``/v1`` HTTP API and client
                      (``repro serve``)
``repro.explore``     autonomous exploration: policies that play the
                      user, deterministic trace record/replay, and the
                      concurrent service load generator
                      (``repro explore --policy ...``, ``repro loadgen``)
``repro.perf``        nested timers + counters wired through solver and
                      service; zero overhead unless enabled
``repro.bench``       vectorized-core benchmark suites (``repro bench``)
"""

from repro.core import (
    BackgroundModel,
    Constraint,
    ConstraintKind,
    ExplorationSession,
    SolverOptions,
    SolverReport,
)
from repro.errors import (
    ConstraintError,
    ConvergenceError,
    DataShapeError,
    NotFittedError,
    ReproError,
    RootFindError,
)
from repro.feedback import (
    ClusterFeedback,
    CovarianceFeedback,
    Feedback,
    MarginFeedback,
    ViewSelectionFeedback,
    feedback_from_dict,
)
from repro.projection import (
    Projection2D,
    UnknownObjectiveError,
    most_informative_view,
    registry,
)
from repro.service import (
    DirectoryStore,
    MemoryStore,
    ServiceClient,
    SessionManager,
    SolveCache,
)

__version__ = "1.6.0"

__all__ = [
    "BackgroundModel",
    "Constraint",
    "ConstraintKind",
    "ExplorationSession",
    "SolverOptions",
    "SolverReport",
    "Feedback",
    "ClusterFeedback",
    "ViewSelectionFeedback",
    "MarginFeedback",
    "CovarianceFeedback",
    "feedback_from_dict",
    "registry",
    "UnknownObjectiveError",
    "Projection2D",
    "most_informative_view",
    "SessionManager",
    "SolveCache",
    "MemoryStore",
    "DirectoryStore",
    "ServiceClient",
    "ReproError",
    "ConstraintError",
    "ConvergenceError",
    "DataShapeError",
    "NotFittedError",
    "RootFindError",
    "__version__",
]
